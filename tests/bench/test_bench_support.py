"""Tests for the benchmark support library (harness + workload).

The benchmark numbers feed EXPERIMENTS.md, so the measurement
machinery itself deserves tests: sweep bookkeeping, table rendering,
the regression fit the shape assertions rely on, and the inventory
workload builder used by every macro benchmark.
"""

import pytest

from repro.bench.harness import Measurement, Sweep, fit_linear, measure
from repro.bench.workload import INVENTORY_SCHEMA_AMOSQL, build_inventory


class TestMeasurement:
    def test_seconds_per_transaction(self):
        cell = Measurement("m", 10, seconds=2.0, transactions=4)
        assert cell.seconds_per_transaction == 0.5

    def test_zero_transactions_guarded(self):
        cell = Measurement("m", 10, seconds=2.0, transactions=0)
        assert cell.seconds_per_transaction == 2.0

    def test_measure_times_callable(self):
        cell = measure("series", 5, lambda: sum(range(1000)), transactions=2)
        assert cell.series == "series"
        assert cell.x == 5
        assert cell.seconds >= 0

    def test_measure_keeps_best_of_repeats(self):
        durations = iter([0.0, 0.0, 0.0])

        cell = measure("s", 1, lambda: next(durations, None), repeats=3)
        assert cell.seconds >= 0


class TestSweep:
    def make_sweep(self):
        sweep = Sweep("title", x_label="n")
        sweep.add(Measurement("a", 10, 0.1, 1))
        sweep.add(Measurement("a", 100, 0.2, 1))
        sweep.add(Measurement("b", 10, 0.4, 1))
        sweep.add(Measurement("b", 100, 4.0, 1))
        return sweep

    def test_series_and_xs(self):
        sweep = self.make_sweep()
        assert sweep.series_names() == ["a", "b"]
        assert sweep.xs() == [10, 100]
        assert sweep.series("a") == [(10, 0.1), (100, 0.2)]

    def test_cell_and_ratio(self):
        sweep = self.make_sweep()
        assert sweep.cell("a", 10).seconds == 0.1
        assert sweep.cell("a", 999) is None
        assert sweep.ratio("b", "a", 10) == pytest.approx(4.0)
        assert sweep.ratio("b", "ghost", 10) is None

    def test_format_table_complete(self):
        table = self.make_sweep().format_table()
        assert "title" in table
        assert "a (ms)" in table and "b (ms)" in table
        assert "a/b" in table  # ratio column for two series
        assert "100.000" in table  # 0.1 s -> 100 ms

    def test_format_table_with_missing_cells(self):
        sweep = self.make_sweep()
        sweep.add(Measurement("a", 1000, 0.3, 1))  # no matching "b" cell
        table = sweep.format_table()
        assert "-" in table  # the hole renders, no crash

    def test_format_table_single_series_has_no_ratio(self):
        sweep = Sweep("t")
        sweep.add(Measurement("only", 1, 0.1, 1))
        assert "/" not in sweep.format_table().splitlines()[2]


class TestFitLinear:
    def test_perfect_line(self):
        slope, intercept = fit_linear([(0, 1.0), (10, 21.0), (20, 41.0)])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_flat_series(self):
        slope, _ = fit_linear([(1, 5.0), (100, 5.0), (10000, 5.0)])
        assert slope == pytest.approx(0.0)

    def test_degenerate_x_variance(self):
        slope, intercept = fit_linear([(5, 1.0), (5, 3.0)])
        assert slope == 0.0
        assert intercept == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([(1, 1.0)])


class TestInventoryWorkload:
    def test_build_populates_consistently(self):
        workload = build_inventory(5, mode="incremental")
        amos = workload.amos
        assert len(workload.items) == 5
        assert len(workload.suppliers) == 5
        for item in workload.items:
            assert amos.value("threshold", item) == 140
            assert amos.value("quantity", item) >= 5000

    def test_rule_created_but_inactive(self):
        workload = build_inventory(2)
        assert not workload.amos.rules.is_active("monitor_items")
        workload.activate()
        assert workload.amos.rules.is_active("monitor_items")
        workload.deactivate()
        assert not workload.amos.rules.is_active("monitor_items")

    def test_touch_one_item_changes_exactly_one_quantity(self):
        workload = build_inventory(4)
        before = {
            item: workload.amos.value("quantity", item)
            for item in workload.items
        }
        workload.touch_one_item(2)
        changed = [
            item
            for item in workload.items
            if workload.amos.value("quantity", item) != before[item]
        ]
        assert changed == [workload.items[2]]

    def test_touch_below_triggers_order(self):
        workload = build_inventory(3)
        workload.activate()
        workload.touch_one_item(0, below=True)
        assert len(workload.orders) == 1
        item, amount = workload.orders[0]
        assert item == workload.items[0]
        assert amount == 5000 - 139

    def test_massive_change_touches_three_functions(self):
        workload = build_inventory(3)
        amos = workload.amos
        item = workload.items[0]
        supplier = workload.suppliers[0]
        before = (
            amos.value("quantity", item),
            amos.value("delivery_time", item, supplier),
            amos.value("consume_freq", item),
        )
        workload.massive_change()
        after = (
            amos.value("quantity", item),
            amos.value("delivery_time", item, supplier),
            amos.value("consume_freq", item),
        )
        assert all(a != b for a, b in zip(before, after))

    def test_schema_script_is_self_contained(self):
        from repro.amosql.interpreter import AmosqlEngine

        engine = AmosqlEngine()
        engine.amos.create_procedure("order", ("item", "integer"),
                                     lambda *args: None)
        engine.execute(INVENTORY_SCHEMA_AMOSQL)
        assert engine.amos.program.has("cnd_monitor_items")

    def test_seed_reproducibility(self):
        first = build_inventory(4, seed=11)
        second = build_inventory(4, seed=11)
        quantities_first = [
            first.amos.value("quantity", item) for item in first.items
        ]
        quantities_second = [
            second.amos.value("quantity", item) for item in second.items
        ]
        assert quantities_first == quantities_second


class TestSweepExport:
    def test_to_rows(self):
        sweep = Sweep("t", x_label="n")
        sweep.add(Measurement("a", 10, 0.5, 5))
        rows = sweep.to_rows()
        assert rows == [
            {
                "series": "a",
                "n": 10,
                "seconds": 0.5,
                "transactions": 5,
                "ms_per_transaction": 100.0,
            }
        ]

    def test_csv_roundtrip(self, tmp_path):
        import csv

        sweep = Sweep("t")
        sweep.add(Measurement("a", 1, 0.1, 1))
        sweep.add(Measurement("b", 2, 0.2, 2))
        path = tmp_path / "sweep.csv"
        sweep.write_csv(str(path))
        rows = list(csv.DictReader(open(path)))
        assert [row["series"] for row in rows] == ["a", "b"]

    def test_json_export(self, tmp_path):
        import json

        sweep = Sweep("my title")
        sweep.add(Measurement("a", 1, 0.1, 1))
        path = tmp_path / "sweep.json"
        sweep.write_json(str(path))
        data = json.load(open(path))
        assert data["title"] == "my title"
        assert len(data["rows"]) == 1

    def test_empty_sweep_csv_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Sweep("t").write_csv(str(tmp_path / "empty.csv"))
