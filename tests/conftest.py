"""Shared fixtures for the test suite."""

import os
import sys

import pytest

# belt and suspenders: make `import repro` work even without installation
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.amosql import AmosqlEngine  # noqa: E402
from repro.bench.workload import INVENTORY_SCHEMA_AMOSQL  # noqa: E402

INVENTORY_POPULATION = """
create item instances :item1, :item2;
set max_stock(:item1) = 5000;
set max_stock(:item2) = 7500;
set min_stock(:item1) = 100;
set min_stock(:item2) = 200;
set consume_freq(:item1) = 20;
set consume_freq(:item2) = 30;
create supplier instances :sup1, :sup2;
set supplies(:sup1) = :item1;
set supplies(:sup2) = :item2;
set delivery_time(:item1, :sup1) = 2;
set delivery_time(:item2, :sup2) = 3;
set quantity(:item1) = 5000;
set quantity(:item2) = 7500;
"""


def make_inventory_engine(mode: str = "incremental", **options):
    """The paper's running example: schema + rule + population.

    Returns ``(engine, orders)`` where ``orders`` collects every
    ``order(item, amount)`` call the rule performs.
    """
    engine = AmosqlEngine(mode=mode, **options)
    orders = []
    engine.amos.create_procedure(
        "order", ("item", "integer"), lambda item, amount: orders.append((item, amount))
    )
    engine.execute(INVENTORY_SCHEMA_AMOSQL)
    engine.execute(INVENTORY_POPULATION)
    return engine, orders


def make_scripted_repl(lines=()):
    """An in-memory AMOSQL repl fed the given input lines.

    Returns ``(repl, out)`` where ``out`` is the ``StringIO`` the repl
    printed into — the shared builder for repl-level tests (dot
    commands, save/load, network dumps) so each suite doesn't rebuild
    its own schema boilerplate.
    """
    import io

    from repro.amosql.repl import Repl

    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        repl.handle_line(line + "\n")
    return repl, out


@pytest.fixture
def inventory():
    """Incremental-mode inventory engine with the rule NOT yet active."""
    return make_inventory_engine()


@pytest.fixture
def inventory_active():
    """Incremental-mode inventory engine with monitor_items active."""
    engine, orders = make_inventory_engine(explain=True)
    engine.execute("activate monitor_items();")
    return engine, orders
