import pytest

from tests.fault.harness import FaultPoint


@pytest.fixture
def fault_point():
    """Factory for armed (or observing) :class:`FaultPoint` hooks."""

    created = []

    def make(point=None, after=0):
        fp = FaultPoint(point, after=after)
        created.append(fp)
        return fp

    return make
