"""The reusable fault-injection harness (docs/TESTING.md).

Production code exposes *named fault points* — ``fault_hook`` seams
called with a point name at interesting moments (``WriteAheadLog``
during append/rotation, ``persistence.save`` around the atomic
rename, the shard pool's ``sync.*`` replica-sync handshake and
``exchange.*`` wave exchange).  The harness arms ONE of those points
and simulates a process kill there by raising :class:`InjectedCrash`,
which derives from ``BaseException`` so ordinary ``except Exception``
recovery code cannot accidentally "survive" the crash.

The same :class:`FaultPoint` object records every point it saw, so
tests can also assert ordering invariants (e.g. fsync before ack)
without killing anything (leave ``point=None``).
"""

from __future__ import annotations

import os
import signal
from typing import Dict, List, Optional, Tuple

#: every WAL fault point, re-exported for parametrized tests
from repro.storage.wal import FAULT_POINTS as WAL_FAULT_POINTS  # noqa: F401

#: the sharded check phase's exchange seams, re-exported likewise
from repro.shard.worker import SHARD_FAULT_POINTS  # noqa: F401

PERSISTENCE_FAULT_POINTS = ("save.mid_write", "save.pre_rename")


class InjectedCrash(BaseException):
    """The process dies here.  BaseException: not catchable by the
    ``except Exception`` blocks that handle ordinary failures."""


class FaultPoint:
    """A deterministic kill switch for one named fault point.

    Parameters
    ----------
    point:
        The fault-point name to crash at; None records hits without
        ever crashing (pure observation).
    after:
        Skip this many matching hits before crashing — ``after=2``
        crashes on the third time the armed point is reached, so tests
        can kill the Nth commit, the Nth rotation, etc.

    Use the instance directly as a ``fault_hook`` callable.
    """

    def __init__(self, point: Optional[str] = None, after: int = 0) -> None:
        self.point = point
        self.after = int(after)
        self.fired = False
        self.hits: List[Tuple[str, Dict]] = []

    def __call__(self, point: str, context: Optional[Dict] = None) -> None:
        self.hits.append((point, dict(context or {})))
        if self.fired or self.point is None or point != self.point:
            return
        if self.after > 0:
            self.after -= 1
            return
        self.fired = True
        raise InjectedCrash(f"injected crash at {point}")

    def seen(self, point: str) -> int:
        """How many times ``point`` was reached."""
        return sum(1 for name, _ in self.hits if name == point)

    def sequence(self) -> List[str]:
        """The point names in the order they were reached."""
        return [name for name, _ in self.hits]

    def __repr__(self) -> str:
        return (
            f"FaultPoint(point={self.point!r}, fired={self.fired}, "
            f"hits={len(self.hits)})"
        )


class KillWorkerAt:
    """SIGKILL one live shard worker at an armed exchange fault point.

    Unlike :class:`FaultPoint` this does not raise in the leader — it
    really kills the worker process, so the abort path under test is
    the leader's own pipe-failure detection (broken broadcast, EOF or
    stall at the merge barrier), exactly what a crashed worker causes
    in production.

    Parameters
    ----------
    engine:
        The :class:`~repro.shard.engine.ShardedEngine` whose pool the
        victim is taken from (``engine.pool_pids``).
    point:
        One of :data:`SHARD_FAULT_POINTS`.
    victim:
        Index into the live pid list (default: shard 0's worker).
    after:
        Skip this many matching hits first — ``after=0`` at
        ``exchange.post`` kills after wave 1's barrier, so wave 2 of a
        cascading check loop hits the corpse.

    Use the instance directly as the engine's ``fault_hook``.
    """

    def __init__(self, engine, point: str, victim: int = 0, after: int = 0) -> None:
        self.engine = engine
        self.point = point
        self.victim = int(victim)
        self.after = int(after)
        self.killed: Optional[int] = None
        self.hits: List[Tuple[str, Dict]] = []

    def __call__(self, point: str, context: Optional[Dict] = None) -> None:
        self.hits.append((point, dict(context or {})))
        if self.killed is not None or point != self.point:
            return
        if self.after > 0:
            self.after -= 1
            return
        pids = self.engine.pool_pids
        if not pids:
            return
        pid = pids[self.victim % len(pids)]
        os.kill(pid, signal.SIGKILL)
        self.killed = pid

    def sequence(self) -> List[str]:
        return [name for name, _ in self.hits]

    def __repr__(self) -> str:
        return (
            f"KillWorkerAt(point={self.point!r}, killed={self.killed}, "
            f"hits={len(self.hits)})"
        )
