"""Deterministic crashes at every named WAL fault point.

Each test arms ONE point from :data:`~repro.storage.wal.FAULT_POINTS`,
drives the inventory workload into it, and checks the durability
contract of docs/DURABILITY.md:

* a crash BEFORE the fsync completes loses at most the in-flight
  (never-acked) commit — recovery yields exactly the acked prefix, or
  the acked prefix plus the in-flight commit when its bytes happened
  to reach the disk intact;
* a crash AFTER the fsync may recover the commit even though its ack
  never left — allowed, because acked ⊆ durable always holds;
* a torn tail (mid-record kill) is truncated, never "repaired";
* after any failed append the log is poisoned: no later commit can
  pretend to be durable.
"""

import json
import os

import pytest

from repro.bench.workload import build_inventory
from repro.errors import WalError
from repro.storage import wal as walmod
from tests.fault.harness import FaultPoint, InjectedCrash

pytestmark = pytest.mark.fault

SEED = 7
N_ITEMS = 4


def fresh_workload():
    workload = build_inventory(N_ITEMS, seed=SEED, explain=True)
    workload.activate()
    workload.amos.storage.auto_publish = True
    workload.amos.storage.publish_snapshot()
    return workload


def open_walled(wal_dir, fault_hook=None, **wal_options):
    workload = fresh_workload()
    workload.amos.open_wal(
        str(wal_dir), fault_hook=fault_hook, **wal_options
    )
    return workload


def commit_quantity(workload, index, value):
    with workload.amos.transaction():
        workload.amos.set_value(
            "quantity", (workload.items[index],), value
        )


def run_reference(n_commits):
    """Naive re-execution: the first ``n_commits`` of the workload."""
    workload = fresh_workload()
    for i in range(n_commits):
        commit_quantity(workload, i % N_ITEMS, 100 + i)
    return workload


def recover_fresh(wal_dir):
    workload = fresh_workload()
    report = workload.amos.open_wal(str(wal_dir))
    return workload, report


def crash_on_commit(workload, commit_index, updates_done):
    """Drive commits until the armed fault point kills one; return how
    many commits were ACKED (completed without the crash)."""
    acked = 0
    for i in range(commit_index + 1):
        try:
            commit_quantity(workload, i % N_ITEMS, 100 + i)
        except InjectedCrash:
            return acked, True
        acked += 1
    return acked, False


class TestKillPoints:
    @pytest.mark.parametrize("kill_at", [0, 1, 3])
    def test_pre_write_kill_loses_only_the_inflight_commit(
        self, tmp_path, kill_at
    ):
        fp = FaultPoint("append.pre_write", after=kill_at)
        live = open_walled(tmp_path, fault_hook=fp)
        acked, crashed = crash_on_commit(live, kill_at, None)
        assert crashed and acked == kill_at
        recovered, report = recover_fresh(tmp_path)
        assert report.commits == acked
        reference = run_reference(acked)
        assert (
            recovered.amos.snapshot_extensions()
            == reference.amos.snapshot_extensions()
        )
        assert (
            recovered.amos.storage.snapshot_epoch
            == reference.amos.storage.snapshot_epoch
        )

    def test_mid_record_kill_leaves_a_torn_tail_that_is_truncated(
        self, tmp_path
    ):
        fp = FaultPoint("append.mid_record", after=2)
        live = open_walled(tmp_path, fault_hook=fp)
        acked, crashed = crash_on_commit(live, 2, None)
        assert crashed and acked == 2
        # the header of the torn record is on disk
        (segment,) = [p for p in os.listdir(tmp_path)]
        size_before = os.path.getsize(tmp_path / segment)
        recovered, report = recover_fresh(tmp_path)
        assert report.truncated_bytes > 0
        assert report.truncated_segment == segment
        assert os.path.getsize(tmp_path / segment) < size_before
        assert report.commits == acked
        reference = run_reference(acked)
        assert (
            recovered.amos.snapshot_extensions()
            == reference.amos.snapshot_extensions()
        )

    @pytest.mark.parametrize("point", ["append.pre_fsync", "append.post_fsync"])
    def test_fsync_straddling_kills_never_lose_an_acked_commit(
        self, tmp_path, point
    ):
        # pre_fsync: the frame bytes reached the file but were never
        # fsync'd — the test filesystem keeps them, a real power cut
        # may not, so BOTH prefix lengths are legal outcomes.
        # post_fsync: the record is durable, the ack never happened —
        # recovery MUST include it (acked ⊆ durable, not equality).
        fp = FaultPoint(point, after=1)
        live = open_walled(tmp_path, fault_hook=fp)
        acked, crashed = crash_on_commit(live, 1, None)
        assert crashed and acked == 1
        recovered, report = recover_fresh(tmp_path)
        if point == "append.post_fsync":
            assert report.commits == acked + 1
        else:
            assert acked <= report.commits <= acked + 1
        reference = run_reference(report.commits)
        assert (
            recovered.amos.snapshot_extensions()
            == reference.amos.snapshot_extensions()
        )
        assert (
            recovered.amos.storage.snapshot_epoch
            == reference.amos.storage.snapshot_epoch
        )

    @pytest.mark.parametrize("point", ["rotate.pre", "rotate.mid", "rotate.post"])
    def test_mid_rotation_kills_keep_every_sealed_record(self, tmp_path, point):
        # tiny segments force a rotation within a few commits
        fp = FaultPoint(point)
        live = open_walled(tmp_path, fault_hook=fp, segment_bytes=256)
        acked, crashed = crash_on_commit(live, 10, None)
        assert crashed  # the rotation point was reached and killed us
        recovered, report = recover_fresh(tmp_path)
        # rotate.post crashes after the append path is already past the
        # write+fsync of nothing (rotation happens BEFORE the record is
        # written), so in every rotation case the in-flight record was
        # never written: recovery is exactly the acked prefix
        assert report.commits == acked
        reference = run_reference(acked)
        assert (
            recovered.amos.snapshot_extensions()
            == reference.amos.snapshot_extensions()
        )

    def test_rotation_produces_multiple_segments_and_survives_reopen(
        self, tmp_path
    ):
        live = open_walled(tmp_path, segment_bytes=256)
        for i in range(8):
            commit_quantity(live, i % N_ITEMS, 100 + i)
        segments = live.amos.wal.segment_paths()
        assert len(segments) > 1
        live.amos.detach_wal()
        recovered, report = recover_fresh(tmp_path)
        assert report.commits == 8
        reference = run_reference(8)
        assert (
            recovered.amos.snapshot_extensions()
            == reference.amos.snapshot_extensions()
        )


class TestPoisoning:
    def test_failed_append_poisons_the_log(self, tmp_path):
        fp = FaultPoint("append.pre_fsync", after=1)
        live = open_walled(tmp_path, fault_hook=fp)
        acked, crashed = crash_on_commit(live, 1, None)
        assert crashed
        # the process (in reality) is dead; a buggy caller that caught
        # the crash and soldiers on must NOT get durability acks
        with pytest.raises(WalError, match="offline"):
            commit_quantity(live, 0, 999)

    def test_fsync_ordering_is_write_then_fsync_then_ack(self, tmp_path):
        observer = FaultPoint(point=None)  # record, never crash
        live = open_walled(tmp_path, fault_hook=observer)
        commit_quantity(live, 0, 111)
        appends = [
            name for name in observer.sequence() if name.startswith("append.")
        ]
        # the last 4 entries belong to the commit we just made
        assert appends[-4:] == [
            "append.pre_write",
            "append.mid_record",
            "append.pre_fsync",
            "append.post_fsync",
        ]


class TestAtomicPersistenceSave:
    """Satellite: ``persistence.save`` is temp-file + atomic rename."""

    @pytest.mark.parametrize("point", ["save.mid_write", "save.pre_rename"])
    def test_crash_during_save_preserves_the_old_snapshot(
        self, tmp_path, point
    ):
        from repro.storage import persistence

        live = fresh_workload()
        path = tmp_path / "data.json"
        live.amos.save_data(str(path))
        before = path.read_bytes()
        commit_quantity(live, 0, 123)
        fp = FaultPoint(point)
        with pytest.raises(InjectedCrash):
            persistence.save(live.amos.storage, str(path), fault_hook=fp)
        # the old snapshot is byte-identical — no torn JSON, ever
        assert path.read_bytes() == before
        json.loads(path.read_text())

    def test_completed_save_is_the_new_snapshot(self, tmp_path):
        from repro.storage import persistence

        live = fresh_workload()
        path = tmp_path / "data.json"
        live.amos.save_data(str(path))
        commit_quantity(live, 0, 123)
        persistence.save(live.amos.storage, str(path))
        fresh = fresh_workload()
        fresh.amos.load_data(str(path))
        assert (
            fresh.amos.snapshot_extensions()
            == live.amos.snapshot_extensions()
        )

    def test_no_temp_file_droppings_on_crash(self, tmp_path):
        from repro.storage import persistence

        live = fresh_workload()
        path = tmp_path / "data.json"
        fp = FaultPoint("save.pre_rename")
        with pytest.raises(InjectedCrash):
            persistence.save(live.amos.storage, str(path), fault_hook=fp)
        assert os.listdir(tmp_path) == []
