"""The crash-recovery oracle: replay ≡ naive re-execution.

DBSP's composability argument (PAPERS.md) gives durability a free
correctness oracle: the stream of committed Δ-sets *is* the database,
so recovering from the write-ahead log must equal simply re-running
the committed transactions on a fresh bootstrap.  Hypothesis generates
a workload (transactions over the inventory schema, quantities
straddling the rule threshold), a kill point from the WAL's named
fault points, and a kill position; the test then:

1. runs the workload against a WAL-attached database with the fault
   armed, counting the commits that were ACKED before the crash;
2. recovers a fresh bootstrap from the log — the recovered commit
   count ``n`` must satisfy ``acked <= n <= acked + 1`` (the ``+1`` is
   the post-fsync-pre-ack window: durable but never acknowledged);
3. naively re-executes the first ``n`` transactions on another fresh
   bootstrap and asserts the recovered database matches it on every
   axis: extensions, snapshot epoch, monitored relations, active
   rules;
4. probes liveness: one more transaction on both databases must fire
   the same rules and land in the same state — i.e. recovery also
   re-baselined the incremental engine's previous-state correctly.

Run size: ``ORACLE_EXAMPLES`` (default 25 so tier-1 stays fast; CI's
fault job runs 500 with a random, logged seed — docs/TESTING.md).
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workload import build_inventory
from tests.fault.harness import FaultPoint, InjectedCrash

pytestmark = [pytest.mark.oracle, pytest.mark.fault]

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

N_ITEMS = 4
SEED = 99

KILL_POINTS = [
    None,  # no crash: recovery of a cleanly closed log
    "append.pre_write",
    "append.mid_record",
    "append.pre_fsync",
    "append.post_fsync",
    "rotate.pre",
    "rotate.mid",
]

# straddle the constant threshold (140) so rules fire and recover
quantity = st.integers(min_value=100, max_value=180)
update = st.tuples(st.integers(0, N_ITEMS - 1), quantity)
txn = st.lists(update, min_size=1, max_size=3)
workload_txns = st.lists(txn, min_size=1, max_size=6)


def fresh_workload():
    workload = build_inventory(N_ITEMS, seed=SEED, explain=True)
    workload.activate()
    workload.amos.storage.auto_publish = True
    workload.amos.storage.publish_snapshot()
    return workload


def apply_txn(workload, updates):
    with workload.amos.transaction():
        for index, value in updates:
            workload.amos.set_value(
                "quantity", (workload.items[index],), value
            )


def run_live(wal_dir, txns, kill_point, kill_at, segment_bytes):
    """The crashing run; returns (acked_commits, crashed)."""
    live = fresh_workload()
    fault = FaultPoint(kill_point, after=kill_at)
    live.amos.open_wal(
        wal_dir, fault_hook=fault, segment_bytes=segment_bytes
    )
    acked = 0
    for updates in txns:
        try:
            apply_txn(live, updates)
        except InjectedCrash:
            return acked, True
        acked += 1
    live.amos.detach_wal()
    return acked, False


def equivalent(recovered, reference):
    assert (
        recovered.amos.snapshot_extensions()
        == reference.amos.snapshot_extensions()
    )
    assert (
        recovered.amos.storage.snapshot_epoch
        == reference.amos.storage.snapshot_epoch
    )
    assert (
        recovered.amos.storage.monitored_relations()
        == reference.amos.storage.monitored_relations()
    )
    assert (
        recovered.amos.rules.active_rules()
        == reference.amos.rules.active_rules()
    )


class TestRecoveryOracle:
    @given(
        txns=workload_txns,
        kill_point=st.sampled_from(KILL_POINTS),
        kill_at=st.integers(0, 5),
        small_segments=st.booleans(),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_recovery_equals_naive_reexecution(
        self, txns, kill_point, kill_at, small_segments
    ):
        wal_dir = tempfile.mkdtemp(prefix="repro-wal-oracle-")
        try:
            segment_bytes = 256 if small_segments else 4 * 1024 * 1024
            acked, crashed = run_live(
                wal_dir, txns, kill_point, kill_at, segment_bytes
            )

            recovered = fresh_workload()
            report = recovered.amos.open_wal(wal_dir)
            n = report.commits
            # acked ⊆ durable ⊆ attempted: a crash may cost exactly the
            # in-flight (unacked) commit, or keep it (post-fsync kill)
            if crashed:
                assert acked <= n <= acked + 1
            else:
                assert n == acked == len(txns)

            reference = fresh_workload()
            for updates in txns[:n]:
                apply_txn(reference, updates)
            equivalent(recovered, reference)

            # liveness probe: the recovered engine's previous-state
            # must difference exactly like the never-crashed one
            fired_before = len(reference.orders)
            probe = [(0, 120), (1, 170)]
            apply_txn(recovered, probe)
            apply_txn(reference, probe)
            equivalent(recovered, reference)
            assert recovered.orders == reference.orders[fired_before:]
            recovered.amos.detach_wal()
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)

    @given(txns=workload_txns)
    @settings(max_examples=max(1, MAX_EXAMPLES // 5), deadline=None)
    def test_double_recovery_is_idempotent(self, txns):
        """Recovering the same log twice (e.g. a crash between recovery
        and the first new commit) yields the same database."""
        wal_dir = tempfile.mkdtemp(prefix="repro-wal-idem-")
        try:
            run_live(wal_dir, txns, None, 0, 4 * 1024 * 1024)
            first = fresh_workload()
            first.amos.open_wal(wal_dir)
            first.amos.detach_wal()
            second = fresh_workload()
            second.amos.open_wal(wal_dir)
            second.amos.detach_wal()
            assert (
                first.amos.snapshot_extensions()
                == second.amos.snapshot_extensions()
            )
            assert (
                first.amos.storage.snapshot_epoch
                == second.amos.storage.snapshot_epoch
            )
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
