"""Worker-death fault injection for the sharded check phase.

A shard worker is an ordinary process; production must assume it can be
SIGKILLed at any moment.  The harness's :class:`KillWorkerAt` really
kills one at each seam (see docs/SHARDING.md) and these tests pin the
blast radius, which differs by seam now that the pool persists across
commits:

* **exchange.pre / mid / post** — a death mid-wave tears the phase: it
  aborts with :class:`ShardWorkerError` (an ordinary Exception, so
  ``Database.commit`` rolls the transaction back), the database is
  bit-identical to its pre-transaction state, the pool is discarded,
  and a probe commit forks a fresh fleet and fires rules normally.
* **sync.pre / sync.mid** — a death during the phase-start replica-sync
  handshake (or any time between commits) is SURVIVABLE: the victim is
  respawned in place from the leader's current memory, the commit
  proceeds, and the result is bit-identical to serial.
* **sync.post** — the handshake finished but the victim dies before
  wave 1: the wave exchange hits the corpse and the phase aborts
  cleanly like any mid-wave death.

``exchange.post`` needs a CASCADING workload: after wave 1's barrier
the results are complete, so a death there can only hurt the NEXT
wave.  Rule ``ra``'s action updates a monitored function that rule
``rb`` watches, so the check loop always runs two waves and wave 2's
broadcast hits the corpse.

The sync seams only exist on a REUSED pool (a fresh fork needs no
handshake), so those tests run a priming commit first.
"""

import gc
import os
import signal

import pytest

from tests.fault.harness import SHARD_FAULT_POINTS, FaultPoint, KillWorkerAt

from repro.amosql.interpreter import AmosqlEngine
from repro.errors import ShardWorkerError

EXCHANGE_POINTS = tuple(p for p in SHARD_FAULT_POINTS if p.startswith("exchange."))
SYNC_POINTS = tuple(p for p in SHARD_FAULT_POINTS if p.startswith("sync."))

SCHEMA = """
create type node;
create function f(node) -> integer;
create function g(node) -> integer;
create rule ra() as
    when for each node n where f(n) > 0
    do bump(n);
create rule rb() as
    when for each node n where g(n) = 1
    do log_g(n);
activate ra();
activate rb();
create node instances :a, :b, :c, :d;
"""


@pytest.fixture(autouse=True)
def _reap_pools():
    """Close pools earlier tests left behind (via ShardPool.__del__)
    so the no-zombie-children assertions below see only their own."""
    yield
    gc.collect()


def build_cascading(shards=2):
    """Two rules, two waves: ``ra`` fires on f and its action sets g,
    which ``rb`` monitors — every triggering commit runs wave 1 (Δf)
    and wave 2 (Δg).  ``policy="fanout"`` pins the pooled path: these
    tiny deltas would route serial under the default auto policy."""
    engine = AmosqlEngine(
        mode="incremental", explain=True, shards=shards,
        shard_options={"policy": "fanout"},
    )
    amos = engine.amos
    logged = []
    amos.create_procedure(
        "bump", ("node",), lambda n: amos.set_value("g", (n,), 1)
    )
    amos.create_procedure("log_g", ("node",), lambda n: logged.append(n))
    engine.execute(SCHEMA)
    nodes = {name: engine.get(name) for name in "abcd"}
    return engine, nodes, logged


class TestExchangeFaultPoints:
    def test_cascade_really_takes_two_waves(self):
        engine, nodes, logged = build_cascading()
        observer = FaultPoint(None)  # record, never crash
        engine.amos.rules.engine.fault_hook = observer
        engine.amos.set_value("f", (nodes["a"],), 5)
        assert logged == [nodes["a"]]
        # a FRESH pool needs no handshake: two exchanges, each
        # pre -> mid -> post in order, and no sync points at all
        assert observer.sequence() == [
            "exchange.pre", "exchange.mid", "exchange.post",
        ] * 2
        # ...but the REUSED pool on the next commit syncs first
        engine.amos.set_value("f", (nodes["b"],), 5)
        assert observer.sequence()[6:9] == [
            "sync.pre", "sync.mid", "sync.post",
        ]
        engine.amos.rules.engine.close_pool()

    @pytest.mark.parametrize("point", EXCHANGE_POINTS)
    def test_worker_death_mid_wave_aborts_cleanly(self, point):
        engine, nodes, logged = build_cascading()
        amos = engine.amos
        sharded = amos.rules.engine
        before = amos.snapshot_extensions()

        killer = KillWorkerAt(sharded, point)
        sharded.fault_hook = killer
        amos.begin()
        amos.set_value("f", (nodes["a"],), 5)
        with pytest.raises(ShardWorkerError):
            amos.commit()

        assert killer.killed is not None
        # the transaction rolled back wholesale: base updates AND any
        # wave-1 rule-action updates (bump's set of g) are gone
        assert amos.snapshot_extensions() == before
        assert logged == []
        # no torn per-shard state: the mid-wave death cost the fleet
        assert sharded.pool_pids == []
        assert sharded.pool_stats["discards"] == 1
        assert amos.storage.in_transaction is False

        # the engine is still live — a probe commit forks a fresh pool
        # and runs the full two-wave cascade
        sharded.fault_hook = None
        amos.set_value("f", (nodes["b"],), 7)
        assert logged == [nodes["b"]]
        assert amos.value("g", nodes["b"]) == 1
        # ...and that pool now PERSISTS for the commits after it
        assert len(sharded.pool_pids) == 2
        sharded.close_pool()

    @pytest.mark.parametrize("point", EXCHANGE_POINTS)
    def test_survivor_workers_are_reaped_too(self, point):
        """The kill takes ONE worker; close() must reap the rest."""
        engine, nodes, _ = build_cascading(shards=3)
        amos = engine.amos
        sharded = amos.rules.engine
        killer = KillWorkerAt(sharded, point, victim=1)
        sharded.fault_hook = killer
        amos.begin()
        amos.set_value("f", (nodes["c"],), 5)
        with pytest.raises(ShardWorkerError):
            amos.commit()
        assert killer.killed is not None
        # every worker of the dead pool was reaped, not just the
        # victim: no zombie children remain in this process
        assert sharded.pool_pids == []
        with pytest.raises(ChildProcessError):
            os.waitpid(-1, os.WNOHANG)


class TestSyncFaultPoints:
    """Deaths at the replica-sync handshake are survivable."""

    @pytest.mark.parametrize("point", ("sync.pre", "sync.mid"))
    def test_kill_during_handshake_respawns_and_commits(self, point):
        engine, nodes, logged = build_cascading()
        amos = engine.amos
        sharded = amos.rules.engine
        amos.set_value("f", (nodes["a"],), 5)  # priming commit: forks
        pids = sharded.pool_pids
        assert len(pids) == 2

        killer = KillWorkerAt(sharded, point)
        sharded.fault_hook = killer
        amos.set_value("f", (nodes["b"],), 7)  # reuse: handshake runs
        assert killer.killed in pids
        # the commit SUCCEEDED — both waves fired on the healed fleet
        assert logged == [nodes["a"], nodes["b"]]
        assert amos.value("g", nodes["b"]) == 1
        # the victim was respawned in place; the survivor kept its pid
        assert sharded.pool_stats["respawns"] == 1
        healed = sharded.pool_pids
        assert len(healed) == 2
        assert killer.killed not in healed
        assert pids[1] in healed
        sharded.close_pool()

    def test_kill_between_commits_respawns_and_commits(self):
        """No seam at all: the worker just dies while the pool idles.
        The next phase's handshake notices (broken pipe / missing ack)
        and respawns it; the commit is bit-identical to serial."""
        engine, nodes, logged = build_cascading()
        amos = engine.amos
        sharded = amos.rules.engine
        amos.set_value("f", (nodes["a"],), 5)
        pids = sharded.pool_pids
        os.kill(pids[0], signal.SIGKILL)

        amos.set_value("f", (nodes["b"],), 7)
        assert logged == [nodes["a"], nodes["b"]]
        assert amos.value("g", nodes["b"]) == 1
        assert sharded.pool_stats["respawns"] == 1
        assert pids[0] not in sharded.pool_pids
        sharded.close_pool()

    def test_kill_after_handshake_aborts_cleanly(self):
        """sync.post: the fleet just agreed on the epoch, then the
        victim dies before wave 1 — the exchange hits the corpse, so
        this degrades to the mid-wave abort path."""
        engine, nodes, logged = build_cascading()
        amos = engine.amos
        sharded = amos.rules.engine
        amos.set_value("f", (nodes["a"],), 5)
        before = amos.snapshot_extensions()

        killer = KillWorkerAt(sharded, "sync.post")
        sharded.fault_hook = killer
        amos.begin()
        amos.set_value("f", (nodes["b"],), 7)
        with pytest.raises(ShardWorkerError):
            amos.commit()
        assert killer.killed is not None
        assert amos.snapshot_extensions() == before
        assert logged == [nodes["a"]]
        assert sharded.pool_pids == []

        # probe: fresh fleet, normal cascade
        sharded.fault_hook = None
        amos.set_value("f", (nodes["c"],), 3)
        assert logged == [nodes["a"], nodes["c"]]
        sharded.close_pool()

    def test_no_refork_between_commits(self):
        """The whole point of the pool: consecutive commits reuse the
        SAME worker processes instead of forking per check phase."""
        engine, nodes, logged = build_cascading()
        sharded = engine.amos.rules.engine
        engine.amos.set_value("f", (nodes["a"],), 5)
        pids = sharded.pool_pids
        for name, value in (("b", 7), ("c", 3), ("d", 9)):
            engine.amos.set_value("f", (nodes[name],), value)
            assert sharded.pool_pids == pids
        assert sharded.pool_stats["forks"] == 2
        assert sharded.pool_stats["respawns"] == 0
        assert sharded.pool_stats["reuse_hits"] == 3
        assert len(logged) == 4
        sharded.close_pool()


class TestFaultHookOffByDefault:
    def test_no_hook_no_overhead_path(self):
        engine, nodes, logged = build_cascading()
        assert engine.amos.rules.engine.fault_hook is None
        engine.amos.set_value("f", (nodes["d"],), 3)
        assert logged == [nodes["d"]]
        engine.amos.rules.engine.close_pool()
