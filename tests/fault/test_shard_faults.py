"""Worker-death fault injection for the sharded check phase.

A shard worker is an ordinary process; production must assume it can be
SIGKILLed at any moment.  The harness's :class:`KillWorkerAt` really
kills one at each exchange seam (``exchange.pre`` / ``mid`` / ``post``,
see docs/SHARDING.md) and these tests pin the blast radius:

* the check phase aborts with :class:`ShardWorkerError` — an ordinary
  Exception, so ``Database.commit`` rolls the transaction back;
* the database is bit-identical to its pre-transaction state
  (extensions, no half-applied rule-action updates);
* no torn per-shard state survives — the pool is gone, and a probe
  commit right after forks a fresh fleet and fires rules normally.

``exchange.post`` needs a CASCADING workload: after wave 1's barrier
the results are complete, so a death there can only hurt the NEXT
wave.  Rule ``ra``'s action updates a monitored function that rule
``rb`` watches, so the check loop always runs two waves and wave 2's
broadcast hits the corpse.
"""

import pytest

from tests.fault.harness import SHARD_FAULT_POINTS, FaultPoint, KillWorkerAt

from repro.amosql.interpreter import AmosqlEngine
from repro.errors import ShardWorkerError

SCHEMA = """
create type node;
create function f(node) -> integer;
create function g(node) -> integer;
create rule ra() as
    when for each node n where f(n) > 0
    do bump(n);
create rule rb() as
    when for each node n where g(n) = 1
    do log_g(n);
activate ra();
activate rb();
create node instances :a, :b, :c, :d;
"""


def build_cascading(shards=2):
    """Two rules, two waves: ``ra`` fires on f and its action sets g,
    which ``rb`` monitors — every triggering commit runs wave 1 (Δf)
    and wave 2 (Δg)."""
    engine = AmosqlEngine(mode="incremental", explain=True, shards=shards)
    amos = engine.amos
    logged = []
    amos.create_procedure(
        "bump", ("node",), lambda n: amos.set_value("g", (n,), 1)
    )
    amos.create_procedure("log_g", ("node",), lambda n: logged.append(n))
    engine.execute(SCHEMA)
    nodes = {name: engine.get(name) for name in "abcd"}
    return engine, nodes, logged


class TestExchangeFaultPoints:
    def test_cascade_really_takes_two_waves(self):
        engine, nodes, logged = build_cascading()
        observer = FaultPoint(None)  # record, never crash
        engine.amos.rules.engine.fault_hook = observer
        engine.amos.set_value("f", (nodes["a"],), 5)
        assert logged == [nodes["a"]]
        # two full exchanges, each pre -> mid -> post in order
        assert observer.sequence() == [
            "exchange.pre", "exchange.mid", "exchange.post",
        ] * 2

    @pytest.mark.parametrize("point", SHARD_FAULT_POINTS)
    def test_worker_death_aborts_cleanly(self, point):
        engine, nodes, logged = build_cascading()
        amos = engine.amos
        sharded = amos.rules.engine
        before = amos.snapshot_extensions()

        killer = KillWorkerAt(sharded, point)
        sharded.fault_hook = killer
        amos.begin()
        amos.set_value("f", (nodes["a"],), 5)
        with pytest.raises(ShardWorkerError):
            amos.commit()

        assert killer.killed is not None
        # the transaction rolled back wholesale: base updates AND any
        # wave-1 rule-action updates (bump's set of g) are gone
        assert amos.snapshot_extensions() == before
        assert logged == []
        # no torn per-shard state: the fleet died with the phase
        assert sharded.pool_pids == []
        assert amos.storage.in_transaction is False

        # the engine is still live — a probe commit forks a fresh pool
        # and runs the full two-wave cascade
        sharded.fault_hook = None
        amos.set_value("f", (nodes["b"],), 7)
        assert logged == [nodes["b"]]
        assert amos.value("g", nodes["b"]) == 1
        assert sharded.pool_pids == []

    @pytest.mark.parametrize("point", SHARD_FAULT_POINTS)
    def test_survivor_workers_are_reaped_too(self, point):
        """The kill takes ONE worker; close() must reap the rest."""
        import os

        engine, nodes, _ = build_cascading(shards=3)
        amos = engine.amos
        sharded = amos.rules.engine
        killer = KillWorkerAt(sharded, point, victim=1)
        sharded.fault_hook = killer
        amos.begin()
        amos.set_value("f", (nodes["c"],), 5)
        with pytest.raises(ShardWorkerError):
            amos.commit()
        assert killer.killed is not None
        # every worker of the dead pool was reaped, not just the
        # victim: no zombie children remain in this process
        assert sharded.pool_pids == []
        with pytest.raises(ChildProcessError):
            os.waitpid(-1, os.WNOHANG)


class TestFaultHookOffByDefault:
    def test_no_hook_no_overhead_path(self):
        engine, nodes, logged = build_cascading()
        assert engine.amos.rules.engine.fault_hook is None
        engine.amos.set_value("f", (nodes["d"],), 3)
        assert logged == [nodes["d"]]
