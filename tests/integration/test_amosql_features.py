"""Integration: broader AMOSQL surface coverage.

Multi-variable conditions (joins in the rule head), subtyping through
the extent machinery, foreign functions inside conditions, string
values, the REPL's script entry point, and assorted runtime behaviours.
"""

import io

import pytest

from repro.amosql.interpreter import AmosqlEngine
from repro.amosql.repl import main as repl_main
from repro.errors import AmosError, RuleActivationError


class TestMultiVariableConditions:
    def test_join_condition_rows_carry_all_variables(self):
        """`for each item i, supplier s where ...` — condition rows are
        (i, s) pairs, and the action sees both (shared query variables)."""
        engine = AmosqlEngine()
        pairs = []
        engine.amos.create_procedure(
            "pair", ("item", "supplier"), lambda i, s: pairs.append((i, s))
        )
        engine.execute(
            """
            create type item;
            create type supplier;
            create function supplies(supplier) -> item;
            create function delivery_time(item, supplier) -> integer;
            create rule slow_supplier() as
                when for each item i, supplier s
                where supplies(s) = i and delivery_time(i, s) > 10
                do pair(i, s);
            create item instances :i1;
            create supplier instances :s1, :s2;
            set supplies(:s1) = :i1;
            set supplies(:s2) = :i1;
            set delivery_time(:i1, :s1) = 5;
            set delivery_time(:i1, :s2) = 5;
            activate slow_supplier();
            """
        )
        engine.execute("set delivery_time(:i1, :s2) = 20;")
        assert pairs == [(engine.get("i1"), engine.get("s2"))]
        # the other supplier of the same item is unaffected
        engine.execute("set delivery_time(:i1, :s2) = 21;")
        assert len(pairs) == 1  # strict: still true, no refire


class TestSubtyping:
    def test_supertype_rules_see_subtype_objects(self):
        engine = AmosqlEngine()
        hits = []
        engine.amos.create_procedure("note", ("vehicle",), hits.append)
        engine.execute(
            """
            create type vehicle;
            create type truck under vehicle;
            create function speed(vehicle) -> integer;
            create rule speeding() as
                when for each vehicle v where speed(v) > 100 do note(v);
            create truck instances :t1;
            activate speeding();
            set speed(:t1) = 130;
            """
        )
        assert hits == [engine.get("t1")]
        assert engine.get("t1").type_name == "truck"

    def test_subtype_extent_is_narrower(self):
        engine = AmosqlEngine()
        engine.execute(
            """
            create type vehicle;
            create type truck under vehicle;
            create vehicle instances :v1;
            create truck instances :t1;
            """
        )
        vehicles = engine.query("select v for each vehicle v")
        trucks = engine.query("select t for each truck t")
        assert len(vehicles) == 2
        assert trucks == [(engine.get("t1"),)]


class TestForeignFunctionsInConditions:
    def test_python_function_as_influent_computation(self):
        engine = AmosqlEngine()
        hits = []
        engine.amos.create_procedure("note", ("sensor",), hits.append)
        engine.amos.create_foreign_function(
            "celsius", ["integer"], ["real"], lambda f: [((f - 32) * 5 / 9,)]
        )
        engine.execute(
            """
            create type sensor;
            create function fahrenheit(sensor) -> integer;
            create rule hot() as
                when for each sensor s where celsius(fahrenheit(s)) > 35
                do note(s);
            create sensor instances :s1;
            set fahrenheit(:s1) = 80;
            activate hot();
            set fahrenheit(:s1) = 100;
            """
        )
        assert hits == [engine.get("s1")]  # 100F = 37.8C


class TestValuesAndExpressions:
    def test_string_values_roundtrip(self):
        engine = AmosqlEngine()
        engine.execute(
            """
            create type person;
            create function nickname(person) -> charstring;
            create person instances :p;
            set nickname(:p) = 'the captain';
            """
        )
        assert engine.query("select nickname(:p)") == [("the captain",)]
        rows = engine.query(
            "select p for each person p where nickname(p) = 'the captain'"
        )
        assert rows == [(engine.get("p"),)]

    def test_division_and_unary_minus(self):
        engine = AmosqlEngine()
        engine.execute(
            """
            create type thing;
            create function weight(thing) -> integer;
            create thing instances :t;
            set weight(:t) = 12;
            """
        )
        assert engine.query("select weight(:t) / 4") == [(3.0,)]
        assert engine.query("select -weight(:t) + 2") == [(-10,)]

    def test_comparison_of_two_function_calls(self):
        engine = AmosqlEngine()
        engine.execute(
            """
            create type thing;
            create function a(thing) -> integer;
            create function b(thing) -> integer;
            create thing instances :t1, :t2;
            set a(:t1) = 1;  set b(:t1) = 2;
            set a(:t2) = 5;  set b(:t2) = 2;
            """
        )
        rows = engine.query("select t for each thing t where a(t) >= b(t)")
        assert rows == [(engine.get("t2"),)]


class TestActivationErrors:
    def test_double_activation_via_amosql(self):
        engine = AmosqlEngine()
        engine.amos.create_procedure("noop", ("item",), lambda i: None)
        engine.execute(
            """
            create type item;
            create function quantity(item) -> integer;
            create rule r() as
                when for each item i where quantity(i) < 1 do noop(i);
            activate r();
            """
        )
        with pytest.raises(RuleActivationError):
            engine.execute("activate r();")
        engine.execute("deactivate r();")
        with pytest.raises(RuleActivationError):
            engine.execute("deactivate r();")


class TestReplScriptMode:
    def test_main_executes_script_file(self, tmp_path, capsys):
        script = tmp_path / "demo.amosql"
        script.write_text(
            "create type item;\n"
            "create function quantity(item) -> integer;\n"
            "create item instances :a;\n"
            "set quantity(:a) = 5;\n"
            "select quantity(i) for each item i;\n"
        )
        exit_code = repl_main([str(script)])
        assert exit_code == 0
        assert "(5,)" in capsys.readouterr().out

    def test_main_mode_flag(self, tmp_path, capsys):
        script = tmp_path / "demo.amosql"
        script.write_text("create type item;\n")
        assert repl_main(["--mode", "naive", str(script)]) == 0

    def test_main_switch_interval_flag(self, tmp_path):
        import sys

        script = tmp_path / "demo.amosql"
        script.write_text("create type item;\n")
        before = sys.getswitchinterval()
        try:
            assert repl_main(["--switch-interval", "0.02", str(script)]) == 0
            assert sys.getswitchinterval() == pytest.approx(0.02)
        finally:
            sys.setswitchinterval(before)


class TestShippedPaperScript:
    def test_inventory_script_runs_and_orders(self, capsys):
        """examples/inventory.amosql is the paper's section-3.1 script."""
        import os

        script = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "inventory.amosql"
        )
        assert repl_main([script]) == 0
        output = capsys.readouterr().out
        assert "4880" in output          # the paper's reorder amount
        assert "140" in output and "290" in output  # the thresholds
