"""Integration: drop statements and action-time firing context."""

import pytest

from repro.amosql.interpreter import AmosqlEngine
from repro.errors import AmosError, ParseError, UnknownRuleError


@pytest.fixture
def engine():
    e = AmosqlEngine(explain=True)
    e.amos.create_procedure("noop", ("item",), lambda item: None)
    e.execute(
        """
        create type item;
        create function quantity(item) -> integer;
        create rule low() as
            when for each item i where quantity(i) < 10 do noop(i);
        create item instances :a;
        set quantity(:a) = 100;
        """
    )
    return e


class TestDropRule:
    def test_drop_removes_rule_and_condition(self, engine):
        engine.execute("drop rule low;")
        with pytest.raises(UnknownRuleError):
            engine.amos.rules.rule("low")
        assert not engine.amos.program.has("cnd_low")

    def test_drop_active_rule_deactivates_and_unmonitors(self, engine):
        engine.execute("activate low();")
        assert engine.amos.storage.is_monitored("quantity")
        engine.execute("drop rule low;")
        assert not engine.amos.storage.is_monitored("quantity")
        engine.execute("set quantity(:a) = 1;")  # no crash, no firing

    def test_drop_cleans_not_predicates(self, engine):
        engine.execute(
            """
            create function trusted(item) -> boolean;
            create rule neg() as
                when for each item i
                where quantity(i) < 10 and not (trusted(i) = true)
                do noop(i);
            """
        )
        aux = [n for n in engine.amos.program.names() if n.startswith("_not_")]
        assert aux
        engine.execute("drop rule neg;")
        for name in aux:
            assert not engine.amos.program.has(name)

    def test_rule_name_reusable_after_drop(self, engine):
        engine.execute("drop rule low;")
        engine.execute(
            """
            create rule low() as
                when for each item i where quantity(i) < 5 do noop(i);
            activate low();
            """
        )
        assert engine.amos.rules.is_active("low")


class TestDropFunction:
    def test_drop_stored_function(self, engine):
        engine.execute("drop rule low;")
        engine.execute("drop function quantity;")
        assert "quantity" not in engine.amos.functions
        assert not engine.amos.storage.has_relation("quantity")

    def test_drop_rejected_while_referenced(self, engine):
        # cnd_low references quantity
        with pytest.raises(AmosError):
            engine.execute("drop function quantity;")

    def test_drop_rejected_while_aggregate_uses_it(self, engine):
        engine.execute("drop rule low;")
        engine.execute(
            "create function total() -> integer as "
            "select sum(quantity(i)) for each item i;"
        )
        with pytest.raises(AmosError):
            engine.execute("drop function _src_total;")


class TestDropType:
    def test_drop_empty_unused_type(self, engine):
        engine.execute("create type scratch;")
        engine.execute("drop type scratch;")
        assert not engine.amos.types.exists("scratch")
        assert not engine.amos.storage.has_relation("scratch")

    def test_drop_rejected_with_instances(self, engine):
        engine.execute("drop rule low;")
        engine.execute("drop function quantity;")
        with pytest.raises(AmosError):
            engine.execute("drop type item;")  # :a still exists

    def test_drop_rejected_when_function_uses_it(self, engine):
        engine.execute("create type scratch;")
        engine.execute("create function w(scratch) -> integer;")
        with pytest.raises(AmosError):
            engine.execute("drop type scratch;")

    def test_drop_rejected_with_subtypes(self, engine):
        engine.execute("create type base_t; create type sub_t under base_t;")
        with pytest.raises(AmosError):
            engine.execute("drop type base_t;")
        engine.execute("drop type sub_t; drop type base_t;")

    def test_drop_garbage_kind_rejected(self, engine):
        with pytest.raises(ParseError):
            engine.execute("drop procedure noop;")


class TestCurrentFiring:
    def test_action_sees_its_firing_context(self):
        engine = AmosqlEngine(explain=True)
        observed = []

        def action_probe(item):
            firing = engine.amos.rules.current_firing
            observed.append(
                (
                    firing.rule,
                    sorted(firing.rows, key=repr),
                    firing.influents_for((item,)),
                )
            )

        engine.amos.create_procedure("probe", ("item",), action_probe)
        engine.execute(
            """
            create type item;
            create function quantity(item) -> integer;
            create rule low() as
                when for each item i where quantity(i) < 10 do probe(i);
            create item instances :a;
            set quantity(:a) = 100;
            activate low();
            set quantity(:a) = 5;
            """
        )
        assert len(observed) == 1
        rule_name, rows, influents = observed[0]
        assert rule_name == "low"
        assert rows == [(engine.get("a"),)]
        assert influents == {"quantity"}

    def test_current_firing_cleared_outside_actions(self):
        engine = AmosqlEngine()
        assert engine.amos.rules.current_firing is None

    def test_current_firing_without_explain_has_rows(self):
        """Even without tracing, the action can see WHICH rows fired."""
        engine = AmosqlEngine(explain=False)
        seen = []
        engine.amos.create_procedure(
            "probe",
            ("item",),
            lambda item: seen.append(engine.amos.rules.current_firing.rows),
        )
        engine.execute(
            """
            create type item;
            create function quantity(item) -> integer;
            create rule low() as
                when for each item i where quantity(i) < 10 do probe(i);
            create item instances :a;
            activate low();
            set quantity(:a) = 5;
            """
        )
        assert seen == [frozenset({(engine.get("a"),)})]
