"""Integration: the incremental, naive, and hybrid monitors are
observationally equivalent — same rule firings on the same transaction
streams.  This is the correctness claim behind the paper's performance
comparison: both implementations monitor the same semantics.
"""

import random

import pytest

from repro.bench.workload import build_inventory

MODES = ("incremental", "naive", "hybrid")


def run_stream(mode: str, seed: int, n_items: int = 12, steps: int = 30):
    """Drive a random but reproducible transaction stream; return the
    observable history: ordered (amount) list + final quantities."""
    workload = build_inventory(n_items, mode=mode, seed=999)
    workload.activate()
    amos = workload.amos
    rng = random.Random(seed)
    for _ in range(steps):
        action = rng.randrange(4)
        item = workload.items[rng.randrange(n_items)]
        supplier = workload.suppliers[workload.items.index(item)]
        if action == 0:
            amos.set_value("quantity", (item,), rng.randrange(0, 400))
        elif action == 1:
            amos.set_value("consume_freq", (item,), rng.randrange(1, 60))
        elif action == 2:
            amos.set_value("delivery_time", (item, supplier), rng.randrange(1, 8))
        else:
            with amos.transaction():
                for other in rng.sample(workload.items, k=3):
                    amos.set_value("quantity", (other,), rng.randrange(0, 6000))
    quantities = sorted(
        (item.id, amos.value("quantity", item)) for item in workload.items
    )
    orders = [(item.id, amount) for item, amount in workload.orders]
    return orders, quantities


class TestObservationalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_incremental_equals_naive(self, seed):
        assert run_stream("incremental", seed) == run_stream("naive", seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_hybrid_equals_incremental(self, seed):
        assert run_stream("hybrid", seed) == run_stream("incremental", seed)


class TestSharedNetworkEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_node_sharing_gives_same_firings(self, seed):
        """Section 7.1: the bushy network (threshold kept as a shared
        node) must monitor exactly the same semantics as the flat one."""

        def run(shared):
            options = (
                {"shared_nodes": frozenset({"threshold"})} if shared else {}
            )
            workload = build_inventory(10, mode="incremental", seed=7, **options)
            workload.activate()
            rng = random.Random(seed)
            for _ in range(25):
                item = workload.items[rng.randrange(10)]
                supplier = workload.suppliers[workload.items.index(item)]
                if rng.random() < 0.5:
                    workload.amos.set_value(
                        "quantity", (item,), rng.randrange(0, 400)
                    )
                else:
                    workload.amos.set_value(
                        "delivery_time", (item, supplier), rng.randrange(1, 9)
                    )
            return [(item.id, amount) for item, amount in workload.orders]

        assert run(shared=True) == run(shared=False)

    def test_shared_network_has_intermediate_node(self):
        workload = build_inventory(
            3, mode="incremental", shared_nodes=frozenset({"threshold"})
        )
        workload.activate()
        network = workload.amos.rules.engine.network
        assert "threshold" in network.nodes
        assert network.node("threshold").level == 1
        assert network.node("cnd_monitor_items").level == 2
