"""Integration tests for the section-8 extensions:

* aggregate condition monitoring (per-group incremental recompute),
* immediate rule processing,
* ECA-style event filters,
* the interactive REPL.
"""

import io

import pytest

from repro.amosql.interpreter import AmosqlEngine
from repro.amosql.repl import Repl
from repro.errors import RuleError


def make_sales_engine(**options):
    engine = AmosqlEngine(**options)
    alerts = []
    engine.amos.create_procedure(
        "warn", ("charstring", "integer"),
        lambda region, total: alerts.append((region, total)),
    )
    engine.execute(
        """
        create type region;
        create type sale;
        create function name(region) -> charstring;
        create function region_of(sale) -> region;
        create function amount(sale) -> integer;
        create function region_total(region r) -> integer as
            select sum(amount(s)) for each sale s where region_of(s) = r;
        create region instances :north, :south;
        set name(:north) = 'north';
        set name(:south) = 'south';
        """
    )
    return engine, alerts


def add_sale(engine, tag, region, amount):
    engine.execute(f"create sale instances :{tag};")
    engine.iface[tag] = engine.get(tag)
    engine.amos.set_value("region_of", (engine.get(tag),), engine.get(region))
    engine.amos.set_value("amount", (engine.get(tag),), amount)


class TestAggregateQueries:
    def test_grouped_sum_via_amosql(self):
        engine, _ = make_sales_engine()
        add_sale(engine, "s1", "north", 100)
        add_sale(engine, "s2", "north", 100)
        add_sale(engine, "s3", "south", 70)
        assert engine.query("select region_total(:north)") == [(200,)]
        assert engine.query("select region_total(:south)") == [(70,)]

    def test_count_aggregate(self):
        engine, _ = make_sales_engine()
        engine.execute(
            "create function n_sales(region r) -> integer as "
            "select count(s) for each sale s where region_of(s) = r;"
        )
        add_sale(engine, "s1", "north", 5)
        add_sale(engine, "s2", "north", 5)
        assert engine.query("select n_sales(:north)") == [(2,)]
        assert engine.query("select n_sales(:south)") == []

    def test_duplicate_amounts_not_collapsed(self):
        """The witness column keeps multiplicity under set semantics."""
        engine, _ = make_sales_engine()
        for index in range(4):
            add_sale(engine, f"s{index}", "north", 25)
        assert engine.query("select region_total(:north)") == [(100,)]


class TestAggregateMonitoring:
    def setup_rule(self, **options):
        engine, alerts = make_sales_engine(**options)
        engine.execute(
            """
            create rule watch_totals() as
                when for each region r where region_total(r) > 150
                do warn(name(r), region_total(r));
            activate watch_totals();
            """
        )
        return engine, alerts

    def test_crossing_threshold_fires(self):
        engine, alerts = self.setup_rule()
        add_sale(engine, "s1", "north", 100)
        assert alerts == []
        add_sale(engine, "s2", "north", 100)
        assert alerts == [("north", 200)]

    def test_strict_silence_while_above(self):
        engine, alerts = self.setup_rule()
        add_sale(engine, "s1", "north", 200)
        add_sale(engine, "s2", "north", 10)
        assert alerts == [("north", 200)]

    def test_deletion_can_retrigger(self):
        engine, alerts = self.setup_rule()
        add_sale(engine, "s1", "north", 200)
        assert len(alerts) == 1
        # removing the sale drops the total below; re-adding re-fires
        engine.amos.set_value("amount", (engine.get("s1"),), 10)
        engine.amos.set_value("amount", (engine.get("s1"),), 500)
        assert alerts == [("north", 200), ("north", 500)]

    def test_incremental_matches_naive(self):
        results = {}
        for mode in ("incremental", "naive"):
            engine, alerts = self.setup_rule(mode=mode)
            add_sale(engine, "a", "north", 90)
            add_sale(engine, "b", "north", 90)
            add_sale(engine, "c", "south", 500)
            engine.amos.set_value("amount", (engine.get("a"),), 1)
            results[mode] = alerts
        assert results["incremental"] == results["naive"]

    def test_only_touched_group_recomputed(self):
        engine, alerts = self.setup_rule(explain=True)
        add_sale(engine, "s1", "north", 60)
        add_sale(engine, "s2", "south", 60)
        engine.amos.set_value("amount", (engine.get("s1"),), 70)
        report = engine.amos.rules.last_report
        group_executions = [
            e
            for it in report.iterations
            if it.trace
            for e in it.trace.executions
            if e.input_sign == "*"
        ]
        assert group_executions, "aggregate recompute not traced"
        assert all(e.input_size == 1 for e in group_executions)


class TestImmediateProcessing:
    def test_fires_inside_open_transaction(self):
        engine = AmosqlEngine(processing="immediate")
        hits = []
        engine.amos.create_procedure("note", ("item",), hits.append)
        engine.execute(
            """
            create type item;
            create function quantity(item) -> integer;
            create rule low() as
                when for each item i where quantity(i) < 10 do note(i);
            create item instances :a;
            set quantity(:a) = 100;
            activate low();
            begin;
            set quantity(:a) = 5;
            """
        )
        assert hits == [engine.get("a")]  # fired BEFORE commit
        engine.execute("rollback;")
        assert engine.amos.value("quantity", engine.get("a")) == 100

    def test_deferred_waits_for_commit(self):
        engine = AmosqlEngine(processing="deferred")
        hits = []
        engine.amos.create_procedure("note", ("item",), hits.append)
        engine.execute(
            """
            create type item;
            create function quantity(item) -> integer;
            create rule low() as
                when for each item i where quantity(i) < 10 do note(i);
            create item instances :a;
            set quantity(:a) = 100;
            activate low();
            begin;
            set quantity(:a) = 5;
            """
        )
        assert hits == []
        engine.execute("commit;")
        assert hits == [engine.get("a")]

    def test_immediate_sees_transient_states(self):
        """The semantic difference: a dip that recovers within the
        transaction IS visible to immediate rules."""
        def run(processing):
            engine = AmosqlEngine(processing=processing)
            hits = []
            engine.amos.create_procedure("note", ("item",), hits.append)
            engine.execute(
                """
                create type item;
                create function quantity(item) -> integer;
                create rule low() as
                    when for each item i where quantity(i) < 10 do note(i);
                create item instances :a;
                set quantity(:a) = 100;
                activate low();
                begin; set quantity(:a) = 5; set quantity(:a) = 100; commit;
                """
            )
            return hits

        assert run("immediate") != []
        assert run("deferred") == []

    def test_bad_processing_mode_rejected(self):
        with pytest.raises(RuleError):
            AmosqlEngine(processing="eventually")


class TestEventFilters:
    def make(self, semantics="nervous"):
        engine = AmosqlEngine()
        hits = []
        engine.amos.create_procedure("note", ("item",), hits.append)
        engine.execute(
            f"""
            create type item;
            create function quantity(item) -> integer;
            create function min_stock(item) -> integer;
            create rule watch() as
                on quantity
                when for each item i where quantity(i) < min_stock(i)
                {semantics} do note(i);
            create item instances :a;
            set quantity(:a) = 100;
            set min_stock(:a) = 50;
            activate watch();
            """
        )
        return engine, hits

    def test_filtered_event_does_not_test_condition(self):
        engine, hits = self.make()
        engine.execute("set min_stock(:a) = 500;")  # condition true, wrong event
        assert hits == []

    def test_matching_event_tests_condition(self):
        engine, hits = self.make()
        engine.execute("set min_stock(:a) = 500;")
        engine.execute("set quantity(:a) = 90;")  # quantity event, still true
        assert hits == [engine.get("a")]

    def test_event_list_parsed(self):
        from repro.amosql.parser import parse_statement

        statement = parse_statement(
            "create rule r() as on quantity, min_stock "
            "when for each item i where quantity(i) < 1 do note(i);"
        )
        assert statement.events == ("quantity", "min_stock")


class TestRepl:
    def run_repl(self, text):
        out = io.StringIO()
        repl = Repl(out=out)
        for line in text.splitlines(keepends=True):
            if not repl.handle_line(line):
                break
        return out.getvalue()

    def test_ddl_update_select_roundtrip(self):
        output = self.run_repl(
            "create type item;\n"
            "create function quantity(item) -> integer;\n"
            "create item instances :a;\n"
            "set quantity(:a) = 7;\n"
            "select quantity(i) for each item i;\n"
        )
        assert "(7,)" in output

    def test_multiline_statement(self):
        output = self.run_repl(
            "create type item;\n"
            "create function quantity(item)\n"
            "    -> integer;\n"
            "create item instances :a;\n"
            "set quantity(:a) = 3;\n"
            "select quantity(:a);\n"
        )
        assert "(3,)" in output

    def test_error_reported_not_raised(self):
        output = self.run_repl("select nonsense(1);\n")
        assert "error:" in output

    def test_dot_commands(self):
        output = self.run_repl(
            "create type item;\n.relations\n.mode\n.rules\n.explain\n.nope\n"
        )
        assert "item: 0 rows" in output
        assert "monitoring=incremental" in output
        assert "(no rules)" in output
        assert "unknown command" in output

    def test_quit_ends_session(self):
        out = io.StringIO()
        repl = Repl(out=out)
        assert repl.handle_line("create type item;\n") is True
        assert repl.handle_line(".quit\n") is False
