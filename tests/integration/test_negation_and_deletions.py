"""Integration: deletions and negation through the full stack.

These scenarios exercise the machinery the inventory example does not:
negative differentials (old-state evaluation by logical rollback),
negation (inverted delta propagation), and multi-valued functions.
"""

import pytest

from repro.amosql.interpreter import AmosqlEngine


@pytest.fixture
def engine():
    e = AmosqlEngine(explain=True)
    e.amos.create_procedure(
        "alert", ("account", "integer"), lambda a, x: e_alerts.append((a, x))
    )
    global e_alerts
    e_alerts = []
    e.execute(
        """
        create type account;
        create function transfer_amount(account) -> integer;
        create function trusted(account) -> boolean;
        create rule fraud() as
            when for each account a
            where transfer_amount(a) > 1000 and not (trusted(a) = true)
            do alert(a, transfer_amount(a));
        create account instances :u, :v;
        set transfer_amount(:u) = 50;
        set transfer_amount(:v) = 2000;
        set trusted(:u) = false;
        set trusted(:v) = true;
        activate fraud();
        """
    )
    return e


class TestNegationScenarios:
    def test_untrusting_fires_for_existing_transfer(self, engine):
        engine.execute("set trusted(:v) = false;")
        assert e_alerts == [(engine.get("v"), 2000)]

    def test_trusting_prevents_future_alerts(self, engine):
        engine.execute("set trusted(:u) = true;")
        engine.execute("set transfer_amount(:u) = 9999;")
        assert e_alerts == []

    def test_simultaneous_transfer_and_trust_change(self, engine):
        """Both influents change in ONE transaction; net semantics decide."""
        engine.execute(
            "begin; set transfer_amount(:u) = 5000; set trusted(:u) = true; commit;"
        )
        assert e_alerts == []
        engine.execute(
            "begin; set transfer_amount(:u) = 6000; set trusted(:u) = false; commit;"
        )
        assert e_alerts == [(engine.get("u"), 6000)]

    def test_transfer_dropping_below_limit_untriggers(self, engine):
        engine.execute("set trusted(:v) = false;")
        assert len(e_alerts) == 1
        # drop and re-raise within one transaction: condition stays true,
        # strict semantics stays silent
        engine.execute(
            "begin; set transfer_amount(:v) = 1; set transfer_amount(:v) = 3000; commit;"
        )
        assert len(e_alerts) == 1

    def test_explanation_shows_negated_influent(self, engine):
        engine.execute("set trusted(:v) = false;")
        fired = engine.amos.rules.last_report.fired_rules()[0]
        row = next(iter(fired.rows))
        # the cause chain bottoms out in the auxiliary NOT-predicate
        assert any(name.startswith("_not_") for name in fired.influents_for(row))


class TestMultiValuedDeletions:
    def test_remove_value_triggers_negative_path(self):
        engine = AmosqlEngine()
        hits = []
        engine.amos.create_procedure(
            "note", ("person", "charstring"), lambda p, b: hits.append((p, b))
        )
        engine.execute(
            """
            create type person;
            create function badge(person) -> charstring;
            create rule solo_badge() as
                when for each person p
                where badge(p) = 'vip' and not (badge(p) = 'banned')
                do note(p, 'vip-ok');
            create person instances :p1;
            activate solo_badge();
            add badge(:p1) = 'vip';
            """
        )
        assert hits == [(engine.get("p1"), "vip-ok")]
        # banning cancels; un-banning re-triggers through a DELETION
        engine.execute("add badge(:p1) = 'banned';")
        engine.execute("remove badge(:p1) = 'banned';")
        assert hits == [
            (engine.get("p1"), "vip-ok"),
            (engine.get("p1"), "vip-ok"),
        ]

    def test_object_deletion_cascade_untriggers(self):
        engine = AmosqlEngine()
        hits = []
        engine.amos.create_procedure("note", ("person",), hits.append)
        engine.execute(
            """
            create type person;
            create function score(person) -> integer;
            create rule high() as
                when for each person p where score(p) > 10 do note(p);
            create person instances :p1;
            activate high();
            set score(:p1) = 50;
            """
        )
        assert hits == [engine.get("p1")]
        # delete the object entirely: no crash, no ghost firings
        engine.amos.delete_object(engine.get("p1"))
        assert engine.amos.extension("cnd_high") == frozenset()
        engine.execute("create person instances :p2; set score(:p2) = 99;")
        assert len(hits) == 2
