"""Integration: the paper's complete running example (section 3.1).

Everything here follows the paper's text: the schema, the population,
the thresholds (item1 reorders below 140, item2 below 290), and the
deferred, strict, set-oriented rule semantics.
"""

import pytest

from tests.conftest import make_inventory_engine


@pytest.fixture
def setup():
    engine, orders = make_inventory_engine(explain=True)
    engine.execute("activate monitor_items();")
    return engine, orders


class TestPaperScenario:
    def test_thresholds_match_paper(self, setup):
        engine, _ = setup
        rows = dict(engine.query("select i, threshold(i) for each item i"))
        assert rows[engine.get("item1")] == 140
        assert rows[engine.get("item2")] == 290

    def test_population_counts(self, setup):
        engine, _ = setup
        assert len(engine.amos.objects_of("item")) == 2
        assert len(engine.amos.objects_of("supplier")) == 2

    def test_order_fired_with_restock_amount(self, setup):
        """'new items will be delivered if the quantity drops below 140'"""
        engine, orders = setup
        engine.execute("set quantity(:item1) = 120;")
        assert orders == [(engine.get("item1"), 5000 - 120)]

    def test_no_order_above_threshold(self, setup):
        engine, orders = setup
        engine.execute("set quantity(:item1) = 140;")  # not BELOW
        assert orders == []
        engine.execute("set quantity(:item1) = 139;")
        assert len(orders) == 1

    def test_both_items_fire_in_one_transaction(self, setup):
        engine, orders = setup
        engine.execute(
            "begin; set quantity(:item1) = 100; set quantity(:item2) = 100; commit;"
        )
        assert sorted(orders, key=lambda pair: pair[0].id) == [
            (engine.get("item1"), 4900),
            (engine.get("item2"), 7400),
        ]

    def test_strict_semantics_orders_once(self, setup):
        """'strict semantics is preferable since we only want to order an
        item once when it becomes low in stock'"""
        engine, orders = setup
        engine.execute("set quantity(:item1) = 120;")
        engine.execute("set quantity(:item1) = 110;")
        engine.execute("set quantity(:item1) = 130;")
        assert len(orders) == 1

    def test_logical_events_only(self, setup):
        """'we only react to net changes, i.e. logical events'"""
        engine, orders = setup
        engine.execute(
            "begin; set quantity(:item1) = 10; set quantity(:item1) = 5000; commit;"
        )
        assert orders == []

    def test_threshold_change_can_trigger(self, setup):
        engine, orders = setup
        engine.execute("set quantity(:item1) = 150;")
        assert orders == []
        # slower deliveries: threshold = 20*10+100 = 300 > 150
        engine.execute("set delivery_time(:item1, :sup1) = 10;")
        assert orders == [(engine.get("item1"), 4850)]

    def test_deactivation_stops_monitoring(self, setup):
        engine, orders = setup
        engine.execute("deactivate monitor_items();")
        engine.execute("set quantity(:item1) = 1;")
        assert orders == []
        assert engine.amos.rules.monitored_relations() == frozenset()

    def test_rollback_never_reaches_rule(self, setup):
        engine, orders = setup
        engine.execute("begin; set quantity(:item1) = 1; rollback;")
        assert orders == []
        assert engine.amos.value("quantity", engine.get("item1")) == 5000


class TestConditionFunction:
    def test_cnd_function_generated(self, setup):
        engine, _ = setup
        assert engine.amos.program.has("cnd_monitor_items")
        # empty while everything is above threshold
        assert engine.amos.extension("cnd_monitor_items") == frozenset()

    def test_cnd_extension_after_drop(self, setup):
        engine, _ = setup
        engine.execute("set quantity(:item1) = 120;")
        assert engine.amos.extension("cnd_monitor_items") == {
            (engine.get("item1"),)
        }

    def test_influents_are_the_five_stored_functions(self, setup):
        engine, _ = setup
        assert engine.amos.program.base_influents("cnd_monitor_items") == {
            "quantity",
            "consume_freq",
            "delivery_time",
            "supplies",
            "min_stock",
        }
