"""Property-based integration: incremental == naive on arbitrary programs.

Hypothesis drives random transaction streams over a join + negation
program and asserts that the incremental monitor (partial differencing,
logical rollback, guarded negatives) reports exactly the same condition
transitions as the naive recompute-and-diff monitor.  This is the
strongest correctness statement in the suite: it covers insertions,
deletions, cancellation, negation, and multi-influent interaction in
one property.
"""

from hypothesis import given, settings, strategies as st

from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.manager import RuleManager
from repro.rules.rule import Rule
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def build(mode):
    """watch(X,Z) <- q(X,Y) & r(Y,Z) & Y < 4 & ~s(X)"""
    db = Database()
    db.create_relation("q", 2)
    db.create_relation("r", 2)
    db.create_relation("s", 1)
    program = Program()
    program.declare_base("q", 2)
    program.declare_base("r", 2)
    program.declare_base("s", 1)
    program.declare_derived("watch", 2)
    program.add_clause(HornClause(
        PredLiteral("watch", (X, Z)),
        [
            PredLiteral("q", (X, Y)),
            PredLiteral("r", (Y, Z)),
            Comparison("<", Y, 4),
            PredLiteral("s", (X,), negated=True),
        ],
    ))
    manager = RuleManager(db, program, mode=mode)
    fired = []
    manager.create_rule(Rule("w", "watch", fired.append))
    manager.activate("w")
    return db, fired


# one operation: (relation, row, is_insert)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("q"), st.tuples(st.integers(0, 3), st.integers(0, 5)),
                  st.booleans()),
        st.tuples(st.just("r"), st.tuples(st.integers(0, 5), st.integers(0, 3)),
                  st.booleans()),
        st.tuples(st.just("s"), st.tuples(st.integers(0, 3)), st.booleans()),
    ),
    min_size=1,
    max_size=25,
)

# how the operations are cut into transactions
cuts = st.lists(st.integers(1, 5), min_size=1, max_size=10)


def drive(mode, ops, sizes):
    db, fired = build(mode)
    index = 0
    for size in sizes:
        batch = ops[index : index + size]
        index += size
        if not batch:
            break
        with db.transaction():
            for relation, row, is_insert in batch:
                if is_insert:
                    db.insert(relation, row)
                else:
                    db.delete(relation, row)
    return sorted(fired)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=operations, sizes=cuts)
    def test_incremental_equals_naive(self, ops, sizes):
        assert drive("incremental", ops, sizes) == drive("naive", ops, sizes)

    @settings(max_examples=30, deadline=None)
    @given(ops=operations, sizes=cuts)
    def test_hybrid_equals_naive(self, ops, sizes):
        assert drive("hybrid", ops, sizes) == drive("naive", ops, sizes)
