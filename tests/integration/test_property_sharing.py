"""Property-based: node-shared networks == flat networks, always.

Section 7.1 presents node sharing as a pure execution-strategy choice;
it must never change what a rule observes.  Hypothesis drives random
transaction streams over a two-level program (a shared ``mid`` view
between the bases and the condition) and compares the firing histories
of the flat and the bushy configuration — and, while we're here, of
the positive-only differential configuration on an insert-only stream.
"""

from hypothesis import given, settings, strategies as st

from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.manager import RuleManager
from repro.rules.rule import Rule
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def build(shared: bool, negatives: bool = True):
    """cond(X,Z) <- mid(X,Y) & r(Y,Z);  mid(X,Y) <- q(X,Y) & Y < 4."""
    db = Database()
    db.create_relation("q", 2)
    db.create_relation("r", 2)
    program = Program()
    program.declare_base("q", 2)
    program.declare_base("r", 2)
    program.declare_derived("mid", 2)
    program.add_clause(HornClause(
        PredLiteral("mid", (X, Y)),
        [PredLiteral("q", (X, Y)), Comparison("<", Y, 4)],
    ))
    program.declare_derived("cond", 2)
    program.add_clause(HornClause(
        PredLiteral("cond", (X, Z)),
        [PredLiteral("mid", (X, Y)), PredLiteral("r", (Y, Z))],
    ))
    manager = RuleManager(
        db,
        program,
        mode="incremental",
        shared_nodes=frozenset({"mid"}) if shared else frozenset(),
        negatives=negatives,
    )
    fired = []
    manager.create_rule(Rule("w", "cond", fired.append))
    manager.activate("w")
    return db, fired


operations = st.lists(
    st.tuples(
        st.sampled_from(["q", "r"]),
        st.tuples(st.integers(0, 4), st.integers(0, 5)),
        st.booleans(),
    ),
    min_size=1,
    max_size=20,
)
cuts = st.lists(st.integers(1, 4), min_size=1, max_size=8)


def drive(db, fired, ops, sizes):
    index = 0
    for size in sizes:
        batch = ops[index : index + size]
        index += size
        if not batch:
            break
        with db.transaction():
            for relation, row, is_insert in batch:
                if is_insert:
                    db.insert(relation, row)
                else:
                    db.delete(relation, row)
    return sorted(fired)


class TestSharingProperty:
    @settings(max_examples=50, deadline=None)
    @given(ops=operations, sizes=cuts)
    def test_shared_equals_flat(self, ops, sizes):
        db_flat, fired_flat = build(shared=False)
        db_shared, fired_shared = build(shared=True)
        assert drive(db_flat, fired_flat, ops, sizes) == drive(
            db_shared, fired_shared, ops, sizes
        )

    @settings(max_examples=30, deadline=None)
    @given(ops=operations, sizes=cuts)
    def test_positive_only_matches_on_insert_only_streams(self, ops, sizes):
        """With no deletions in the stream, the negative differentials
        never execute — the positive-only network must agree."""
        insert_only = [(rel, row, True) for rel, row, _ in ops]
        db_full, fired_full = build(shared=False, negatives=True)
        db_pos, fired_pos = build(shared=False, negatives=False)
        assert drive(db_full, fired_full, insert_only, sizes) == drive(
            db_pos, fired_pos, insert_only, sizes
        )
