"""Soak test: a long, mixed, randomized workload with invariant checks.

Drives hundreds of transactions — updates, object churn, rollbacks,
rule-triggered cascades — against the full stack and checks structural
invariants after every transaction:

* indexes agree with full scans,
* delta accumulators are empty between transactions,
* propagation-network delta-sets are empty between transactions,
* the condition's materialized truth (recomputed from scratch) agrees
  with what the strict rule has reported over time,
* and the whole history is identical under the naive engine.
"""

import random

import pytest

from repro.bench.workload import build_inventory
from repro.obs import metrics

STEPS = 150


def invariant_check(workload):
    amos = workload.amos
    storage = amos.storage
    # 1. indexes consistent with scans
    for name in storage.relation_names():
        relation = storage.relation(name)
        for columns, index in relation.indexes.items():
            assert len(index) == len(relation), (name, columns)
            for key in list(index.keys())[:5]:
                by_index = index.probe(key)
                by_scan = frozenset(
                    row
                    for row in relation.rows()
                    if tuple(row[c] for c in columns) == key
                )
                assert by_index == by_scan, (name, columns, key)
    # 2. no delta residue between transactions
    assert not storage.has_pending_changes()
    # 3. no wave-front residue
    engine = amos.rules.engine
    network = getattr(engine, "network", None)
    if network is not None:
        for node in network.nodes.values():
            assert node.delta.empty, node
    # 4. log empty outside transactions
    assert len(storage.log) == 0


def run_soak(mode: str, seed: int):
    workload = build_inventory(15, mode=mode, seed=123)
    workload.activate()
    amos = workload.amos
    rng = random.Random(seed)
    history = []
    for step in range(STEPS):
        choice = rng.random()
        item = workload.items[rng.randrange(len(workload.items))]
        supplier = workload.suppliers[workload.items.index(item)]
        try:
            if choice < 0.45:
                amos.set_value("quantity", (item,), rng.randrange(0, 1000))
            elif choice < 0.6:
                amos.set_value(
                    "delivery_time", (item, supplier), rng.randrange(1, 12)
                )
            elif choice < 0.7:
                amos.set_value("min_stock", (item,), rng.randrange(0, 400))
            elif choice < 0.8:
                # multi-update transaction
                with amos.transaction():
                    for other in rng.sample(workload.items, k=3):
                        amos.set_value(
                            "quantity", (other,), rng.randrange(0, 6000)
                        )
            elif choice < 0.9:
                # a transaction that rolls back: must leave no trace
                amos.begin()
                amos.set_value("quantity", (item,), 1)
                amos.rollback()
            else:
                # churn an unrelated object
                scratch = amos.create_object("item")
                amos.set_value("quantity", (scratch,), 9999)
                amos.delete_object(scratch)
        except Exception:
            raise
        history.append(len(workload.orders))
        if mode == "incremental" and step % 10 == 0:
            invariant_check(workload)
    orders = [(item.id, amount) for item, amount in workload.orders]
    return orders, history


class TestSoak:
    @pytest.mark.parametrize("seed", [7, 99])
    def test_long_mixed_workload_invariants_and_equivalence(self, seed):
        incremental = run_soak("incremental", seed)
        naive = run_soak("naive", seed)
        assert incremental == naive

    def test_invariants_hold_with_metrics_enabled(self):
        """The instrumentation is passive: the full invariant check must
        hold just as well while a registry is collecting."""
        with metrics.collecting():
            incremental = run_soak("incremental", seed=7)
        assert incremental == run_soak("incremental", seed=7)

    def test_condition_truth_consistent_after_soak(self):
        workload = build_inventory(10, mode="incremental", seed=5)
        workload.activate()
        amos = workload.amos
        rng = random.Random(31)
        for step in range(80):
            item = workload.items[rng.randrange(10)]
            amos.set_value("quantity", (item,), rng.randrange(0, 300))
        # recompute the condition from scratch and compare against a
        # fresh naive engine's view of the same data
        truth = amos.extension("cnd_monitor_items")
        expected = frozenset(
            (item,)
            for item in workload.items
            if amos.value("quantity", item) < amos.value("threshold", item)
        )
        assert truth == expected


def run_observed_soak(n_items: int, steps: int = 60):
    """A steady stream of one-item updates with metrics collecting."""
    workload = build_inventory(n_items, mode="incremental", seed=11, observe=True)
    workload.activate()
    rng = random.Random(17)
    with metrics.collecting() as registry:
        for _ in range(steps):
            workload.touch_one_item(
                rng.randrange(n_items), below=rng.random() < 0.3
            )
    return workload, registry


class TestObservedSoak:
    """Section 6's space claim, soak-tested: intermediate deltas are a
    transient wave front, so peak delta memory tracks the *change* size,
    not the database size — and everything materialized is discarded."""

    def test_wavefront_peak_bounded_and_database_size_independent(self):
        peaks = {}
        for n_items in (15, 60):
            workload, registry = run_observed_soak(n_items)
            peaks[n_items] = registry.gauge(
                "propagation.wavefront_peak"
            ).max_value
            # nothing leaked past the check phases: every transient row
            # was discarded and the network is quiescent again
            network = workload.amos.rules.engine.network
            assert all(node.delta.empty for node in network.nodes.values())
            assert registry.value("propagation.discards") > 0
            assert registry.value("propagation.discarded_rows") > 0
        # a one-item update keeps a tiny wave front at any database size
        assert 0 < peaks[15] <= 50
        assert peaks[60] <= peaks[15] + 10

    def test_soak_results_unchanged_by_observation(self):
        observed, _ = run_observed_soak(15)
        plain = build_inventory(15, mode="incremental", seed=11)
        plain.activate()
        rng = random.Random(17)
        for _ in range(60):
            plain.touch_one_item(rng.randrange(15), below=rng.random() < 0.3)
        assert [amount for _, amount in observed.orders] == [
            amount for _, amount in plain.orders
        ]
