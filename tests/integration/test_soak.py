"""Soak test: a long, mixed, randomized workload with invariant checks.

Drives hundreds of transactions — updates, object churn, rollbacks,
rule-triggered cascades — against the full stack and checks structural
invariants after every transaction:

* indexes agree with full scans,
* delta accumulators are empty between transactions,
* propagation-network delta-sets are empty between transactions,
* the condition's materialized truth (recomputed from scratch) agrees
  with what the strict rule has reported over time,
* and the whole history is identical under the naive engine.
"""

import random

import pytest

from repro.bench.workload import build_inventory

STEPS = 150


def invariant_check(workload):
    amos = workload.amos
    storage = amos.storage
    # 1. indexes consistent with scans
    for name in storage.relation_names():
        relation = storage.relation(name)
        for columns, index in relation.indexes.items():
            assert len(index) == len(relation), (name, columns)
            for key in list(index.keys())[:5]:
                by_index = index.probe(key)
                by_scan = frozenset(
                    row
                    for row in relation.rows()
                    if tuple(row[c] for c in columns) == key
                )
                assert by_index == by_scan, (name, columns, key)
    # 2. no delta residue between transactions
    assert not storage.has_pending_changes()
    # 3. no wave-front residue
    engine = amos.rules.engine
    network = getattr(engine, "network", None)
    if network is not None:
        for node in network.nodes.values():
            assert node.delta.empty, node
    # 4. log empty outside transactions
    assert len(storage.log) == 0


def run_soak(mode: str, seed: int):
    workload = build_inventory(15, mode=mode, seed=123)
    workload.activate()
    amos = workload.amos
    rng = random.Random(seed)
    history = []
    for step in range(STEPS):
        choice = rng.random()
        item = workload.items[rng.randrange(len(workload.items))]
        supplier = workload.suppliers[workload.items.index(item)]
        try:
            if choice < 0.45:
                amos.set_value("quantity", (item,), rng.randrange(0, 1000))
            elif choice < 0.6:
                amos.set_value(
                    "delivery_time", (item, supplier), rng.randrange(1, 12)
                )
            elif choice < 0.7:
                amos.set_value("min_stock", (item,), rng.randrange(0, 400))
            elif choice < 0.8:
                # multi-update transaction
                with amos.transaction():
                    for other in rng.sample(workload.items, k=3):
                        amos.set_value(
                            "quantity", (other,), rng.randrange(0, 6000)
                        )
            elif choice < 0.9:
                # a transaction that rolls back: must leave no trace
                amos.begin()
                amos.set_value("quantity", (item,), 1)
                amos.rollback()
            else:
                # churn an unrelated object
                scratch = amos.create_object("item")
                amos.set_value("quantity", (scratch,), 9999)
                amos.delete_object(scratch)
        except Exception:
            raise
        history.append(len(workload.orders))
        if mode == "incremental" and step % 10 == 0:
            invariant_check(workload)
    orders = [(item.id, amount) for item, amount in workload.orders]
    return orders, history


class TestSoak:
    @pytest.mark.parametrize("seed", [7, 99])
    def test_long_mixed_workload_invariants_and_equivalence(self, seed):
        incremental = run_soak("incremental", seed)
        naive = run_soak("naive", seed)
        assert incremental == naive

    def test_condition_truth_consistent_after_soak(self):
        workload = build_inventory(10, mode="incremental", seed=5)
        workload.activate()
        amos = workload.amos
        rng = random.Random(31)
        for step in range(80):
            item = workload.items[rng.randrange(10)]
            amos.set_value("quantity", (item,), rng.randrange(0, 300))
        # recompute the condition from scratch and compare against a
        # fresh naive engine's view of the same data
        truth = amos.extension("cnd_monitor_items")
        expected = frozenset(
            (item,)
            for item in workload.items
            if amos.value("quantity", item) < amos.value("threshold", item)
        )
        assert truth == expected
