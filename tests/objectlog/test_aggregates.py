"""Tests for aggregate predicates (the section-8 extension)."""

import pytest

from repro.errors import ObjectLogError
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.algebra.oldstate import NewStateView
from repro.storage.database import Database

X, V = Variable("X"), Variable("V")


@pytest.fixture
def setup():
    """sales(region, order_id, amount) — order_id is the witness."""
    db = Database()
    sales = db.create_relation("sales", 3)
    sales.bulk_insert([
        ("north", 1, 100),
        ("north", 2, 100),  # same amount, distinct witness
        ("north", 3, 50),
        ("south", 4, 70),
    ])
    program = Program()
    program.declare_base("sales", 3)
    return db, program


def extension(db, program, name):
    return Evaluator(program, NewStateView(db)).extension(name)


class TestDeclaration:
    def test_all_functions(self, setup):
        db, program = setup
        for func in ("count", "sum", "min", "max", "avg"):
            program.declare_aggregate(f"{func}_by_region", "sales", 1, func)
        assert program.predicate("sum_by_region").kind == "aggregate"
        assert program.predicate("sum_by_region").arity == 2

    def test_unknown_function_rejected(self, setup):
        _, program = setup
        with pytest.raises(ObjectLogError):
            program.declare_aggregate("median_x", "sales", 1, "median")

    def test_source_arity_validated(self, setup):
        _, program = setup
        with pytest.raises(ObjectLogError):
            program.declare_aggregate("bad", "sales", 3, "sum")

    def test_direct_influents(self, setup):
        _, program = setup
        program.declare_aggregate("total", "sales", 1, "sum")
        assert program.direct_influents("total") == {"sales"}
        assert program.base_influents("total") == {"sales"}
        assert program.level_of("total") == 1


class TestEvaluation:
    def test_sum_with_witnesses(self, setup):
        db, program = setup
        program.declare_aggregate("total", "sales", 1, "sum")
        assert extension(db, program, "total") == {
            ("north", 250),  # 100 + 100 + 50: duplicates kept by witness
            ("south", 70),
        }

    def test_count(self, setup):
        db, program = setup
        program.declare_aggregate("n_orders", "sales", 1, "count")
        assert extension(db, program, "n_orders") == {
            ("north", 3),
            ("south", 1),
        }

    def test_min_max_avg(self, setup):
        db, program = setup
        program.declare_aggregate("lo", "sales", 1, "min")
        program.declare_aggregate("hi", "sales", 1, "max")
        program.declare_aggregate("mean", "sales", 1, "avg")
        assert ("north", 50) in extension(db, program, "lo")
        assert ("north", 100) in extension(db, program, "hi")
        assert ("south", 70.0) in extension(db, program, "mean")

    def test_bound_group_probes_one_group(self, setup):
        db, program = setup
        program.declare_aggregate("total", "sales", 1, "sum")
        evaluator = Evaluator(program, NewStateView(db))
        envs = list(evaluator.query("total", ("south", V)))
        assert [env[V] for env in envs] == [70]

    def test_empty_group_is_undefined(self, setup):
        db, program = setup
        program.declare_aggregate("total", "sales", 1, "sum")
        evaluator = Evaluator(program, NewStateView(db))
        assert list(evaluator.query("total", ("west", V))) == []

    def test_zero_group_aggregate(self, setup):
        """A 0-ary group: one global aggregate row."""
        db, program = setup
        program.declare_aggregate("grand_total", "sales", 0, "sum")
        # value column is the LAST source column
        assert extension(db, program, "grand_total") == {(320,)}

    def test_aggregate_over_derived_source(self, setup):
        db, program = setup
        program.declare_derived("big_sales", 3)
        A, O = Variable("A"), Variable("O")
        from repro.objectlog.literals import Comparison

        program.add_clause(HornClause(
            PredLiteral("big_sales", (X, O, A)),
            [PredLiteral("sales", (X, O, A)), Comparison(">=", A, 100)],
        ))
        program.declare_aggregate("big_total", "big_sales", 1, "sum")
        assert extension(db, program, "big_total") == {("north", 200)}

    def test_aggregate_usable_in_clause_bodies(self, setup):
        db, program = setup
        program.declare_aggregate("total", "sales", 1, "sum")
        program.declare_derived("busy_region", 1)
        from repro.objectlog.literals import Comparison

        program.add_clause(HornClause(
            PredLiteral("busy_region", (X,)),
            [PredLiteral("total", (X, V)), Comparison(">", V, 100)],
        ))
        assert extension(db, program, "busy_region") == {("north",)}
