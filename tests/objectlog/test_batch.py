"""Tests for the compiled set-at-a-time clause plans (repro.objectlog.batch)."""

import pytest

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView
from repro.errors import UnsafeClauseError
from repro.objectlog.batch import ClausePlan, compile_plan
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import Assignment, Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Arith, Variable
from repro.storage.database import Database

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


@pytest.fixture
def setup():
    db = Database()
    q = db.create_relation("q", 2)
    r = db.create_relation("r", 2)
    q.bulk_insert([(1, 1), (1, 2), (2, 3)])
    r.bulk_insert([(1, 10), (2, 20), (3, 30)])
    program = Program()
    program.declare_base("q", 2)
    program.declare_base("r", 2)
    return db, program


def evaluator(db, program, deltas=None):
    return Evaluator(program, NewStateView(db), deltas=deltas)


def plan_for(program, head_args, body, bound_vars=()):
    clause = HornClause(PredLiteral("out", tuple(head_args)), list(body))
    return compile_plan(clause, program, bound_vars=bound_vars)


class TestPlanExecution:
    def test_scan_then_join(self, setup):
        db, program = setup
        plan = plan_for(
            program,
            (X, Y, Z),
            [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
        )
        rows = set(plan.rows(evaluator(db, program)))
        assert rows == {(1, 1, 10), (1, 2, 20), (2, 3, 30)}

    def test_constant_probe(self, setup):
        db, program = setup
        plan = plan_for(program, (Y,), [PredLiteral("q", (1, Y))])
        assert set(plan.rows(evaluator(db, program))) == {(1,), (2,)}

    def test_repeated_variable_checks(self, setup):
        db, program = setup
        plan = plan_for(program, (X,), [PredLiteral("q", (X, X))])
        assert set(plan.rows(evaluator(db, program))) == {(1,)}

    def test_constant_in_emitted_head(self, setup):
        db, program = setup
        plan = plan_for(program, (X, 99), [PredLiteral("q", (X, 3))])
        assert set(plan.rows(evaluator(db, program))) == {(2, 99)}

    def test_fan_out_does_not_alias_registers(self, setup):
        """One seed register list matching several rows must fan out
        into independent copies (the bind/bind_into split)."""
        db, program = setup
        plan = plan_for(
            program,
            (X, Y, Z, W),
            [PredLiteral("r", (X, Y)), PredLiteral("q", (Z, W))],
        )
        rows = set(plan.rows(evaluator(db, program)))
        assert len(rows) == 9  # 3 r-rows x 3 q-rows, all distinct

    def test_comparison_filters(self, setup):
        db, program = setup
        plan = plan_for(
            program,
            (X, Y),
            [PredLiteral("r", (X, Y)), Comparison("<", Y, 25)],
        )
        assert set(plan.rows(evaluator(db, program))) == {(1, 10), (2, 20)}

    def test_assignment_binds(self, setup):
        db, program = setup
        plan = plan_for(
            program,
            (X, Z),
            [PredLiteral("r", (X, Y)), Assignment(Z, Arith("*", Y, 2))],
        )
        assert set(plan.rows(evaluator(db, program))) == {
            (1, 20), (2, 40), (3, 60),
        }

    def test_negation_filters(self, setup):
        db, program = setup
        plan = plan_for(
            program,
            (X, Y),
            [PredLiteral("r", (X, Y)), PredLiteral("q", (X, X), negated=True)],
        )
        assert set(plan.rows(evaluator(db, program))) == {(2, 20), (3, 30)}

    def test_derived_subgoal_uses_evaluator_memo(self, setup):
        db, program = setup
        program.declare_derived("big", 1)
        program.add_clause(
            HornClause(PredLiteral("big", (X,)), [PredLiteral("r", (X, Y)), Comparison(">", Y, 15)])
        )
        plan = plan_for(
            program,
            (X, Y),
            [PredLiteral("q", (X, Y)), PredLiteral("big", (Y,))],
        )
        assert set(plan.rows(evaluator(db, program))) == {(1, 2), (2, 3)}

    def test_delta_literal_reads_delta_side(self, setup):
        db, program = setup
        deltas = {"q": DeltaSet(frozenset({(7, 8)}), frozenset({(1, 1)}))}
        plus_plan = plan_for(
            program, (X, Y), [PredLiteral("q", (X, Y), delta="+")]
        )
        minus_plan = plan_for(
            program, (X, Y), [PredLiteral("q", (X, Y), delta="-")]
        )
        assert set(plus_plan.rows(evaluator(db, program, deltas))) == {(7, 8)}
        assert set(minus_plan.rows(evaluator(db, program, deltas))) == {(1, 1)}

    def test_delta_literal_keyed_probe(self, setup):
        db, program = setup
        deltas = {
            "q": DeltaSet(frozenset({(7, 8), (7, 9), (5, 6)}), frozenset())
        }
        plan = plan_for(program, (Y,), [PredLiteral("q", (7, Y), delta="+")])
        assert set(plan.rows(evaluator(db, program, deltas))) == {(8,), (9,)}

    def test_join_through_delta(self, setup):
        """The shape of a partial differential: delta-read joined
        against the stored state."""
        db, program = setup
        deltas = {"q": DeltaSet(frozenset({(9, 2)}), frozenset())}
        plan = plan_for(
            program,
            (X, Z),
            [PredLiteral("q", (X, Y), delta="+"), PredLiteral("r", (Y, Z))],
        )
        assert set(plan.rows(evaluator(db, program, deltas))) == {(9, 20)}


class TestBoundSeeds:
    def test_bound_vars_take_first_slots(self, setup):
        db, program = setup
        plan = plan_for(
            program, (X, Y), [PredLiteral("q", (X, Y))], bound_vars=(X,)
        )
        assert plan.slot_of[X] == 0

    def test_seeded_execution_restricts_results(self, setup):
        db, program = setup
        plan = plan_for(
            program, (X, Y), [PredLiteral("q", (X, Y))], bound_vars=(X,)
        )
        seeds = [[1] + [None] * (plan.n_slots - 1)]
        out = plan.execute(evaluator(db, program), seeds)
        rows = {(regs[plan.slot_of[X]], regs[plan.slot_of[Y]]) for regs in out}
        assert rows == {(1, 1), (1, 2)}


class TestPlanSafety:
    def test_unbound_negation_rejected(self, setup):
        _, program = setup
        with pytest.raises(UnsafeClauseError):
            plan_for(
                program,
                (X,),
                [PredLiteral("q", (X, X), negated=True), PredLiteral("r", (X, Y))],
            )

    def test_unbound_comparison_rejected(self, setup):
        _, program = setup
        with pytest.raises(UnsafeClauseError):
            plan_for(program, (X,), [Comparison("<", X, 5), PredLiteral("q", (X, Y))])

    def test_head_variable_missing_from_body_rejected(self, setup):
        _, program = setup
        with pytest.raises(UnsafeClauseError):
            plan_for(program, (X, W), [PredLiteral("q", (X, Y))])

    def test_plan_is_reusable_across_runs(self, setup):
        db, program = setup
        plan = plan_for(program, (X, Y), [PredLiteral("q", (X, Y))])
        first = set(plan.rows(evaluator(db, program)))
        db.relation("q").insert((4, 4))
        second = set(plan.rows(evaluator(db, program)))
        assert second == first | {(4, 4)}

    def test_repr_mentions_steps(self, setup):
        _, program = setup
        plan = plan_for(program, (X, Y), [PredLiteral("q", (X, Y))])
        assert isinstance(plan, ClausePlan)
        assert "steps=1" in repr(plan)
