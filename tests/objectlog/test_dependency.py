"""Tests for dependency networks (paper Fig. 1)."""

import pytest

from repro.errors import RecursionNotSupportedError
from repro.objectlog.clause import HornClause
from repro.objectlog.dependency import DependencyNetwork
from repro.objectlog.literals import PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def clause(head, *body):
    return HornClause(head, list(body))


@pytest.fixture
def program():
    """The paper's Fig.-1 shape: cnd depends on quantity and threshold;
    threshold depends on four stored functions."""
    p = Program()
    for name in ("quantity", "consume_freq", "min_stock"):
        p.declare_base(name, 2)
    p.declare_base("delivery_time", 3)
    p.declare_base("supplies", 2)
    p.declare_derived("threshold", 2)
    T, G1, G2, G3 = (Variable(n) for n in ("T", "G1", "G2", "G3"))
    p.add_clause(clause(
        PredLiteral("threshold", (X, T)),
        PredLiteral("consume_freq", (X, G1)),
        PredLiteral("delivery_time", (X, G2, G3)),
        PredLiteral("supplies", (X, G2)),
        PredLiteral("min_stock", (X, T)),
    ))
    p.declare_derived("cnd", 1)
    p.add_clause(clause(
        PredLiteral("cnd", (X,)),
        PredLiteral("quantity", (X, Y)),
        PredLiteral("threshold", (X, Z)),
    ))
    return p


class TestDependencyNetwork:
    def test_bushy_network_keeps_threshold(self, program):
        network = DependencyNetwork(program)
        network.add_root("cnd", keep=frozenset({"threshold"}))
        assert network.influents_of("cnd") == {"quantity", "threshold"}
        assert network.influents_of("threshold") == {
            "consume_freq",
            "delivery_time",
            "supplies",
            "min_stock",
        }

    def test_flat_network_has_five_influents(self, program):
        """Full expansion: exactly the paper's five partial differentials."""
        network = DependencyNetwork(program)
        network.add_root("cnd")
        assert network.influents_of("cnd") == {
            "quantity",
            "consume_freq",
            "delivery_time",
            "supplies",
            "min_stock",
        }
        assert "threshold" not in network.nodes()

    def test_levels(self, program):
        network = DependencyNetwork(program)
        network.add_root("cnd", keep=frozenset({"threshold"}))
        levels = network.levels()
        assert levels["quantity"] == 0
        assert levels["threshold"] == 1
        assert levels["cnd"] == 2

    def test_bottom_up_order(self, program):
        network = DependencyNetwork(program)
        network.add_root("cnd", keep=frozenset({"threshold"}))
        order = network.bottom_up_order()
        assert order.index("threshold") < order.index("cnd")
        assert all(order.index(base) < order.index("threshold")
                   for base in network.base_nodes() if base != "quantity")

    def test_base_nodes_and_roots(self, program):
        network = DependencyNetwork(program)
        network.add_root("cnd")
        assert network.roots() == {"cnd"}
        assert network.base_nodes() == network.nodes() - {"cnd"}

    def test_dependents(self, program):
        network = DependencyNetwork(program)
        network.add_root("cnd")
        assert network.dependents_of("quantity") == {"cnd"}

    def test_to_dot_mentions_every_node(self, program):
        network = DependencyNetwork(program)
        network.add_root("cnd", keep=frozenset({"threshold"}))
        dot = network.to_dot()
        for node in network.nodes():
            assert node in dot
        assert dot.startswith("digraph")

    def test_recursion_rejected(self):
        program = Program()
        program.declare_base("e", 2)
        program.declare_derived("t", 2)
        program.add_clause(clause(
            PredLiteral("t", (X, Z)),
            PredLiteral("e", (X, Y)),
            PredLiteral("t", (Y, Z)),
        ))
        network = DependencyNetwork(program)
        with pytest.raises(RecursionNotSupportedError):
            network.add_root("t")
