"""Tests for the ObjectLog evaluation engine."""

import pytest

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView, OldStateView
from repro.errors import (
    RecursionNotSupportedError,
    UnknownPredicateError,
    UnsafeClauseError,
)
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import Assignment, Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Arith, Variable
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture
def setup():
    db = Database()
    q = db.create_relation("q", 2)
    r = db.create_relation("r", 2)
    q.bulk_insert([(1, 1), (1, 2), (2, 3)])
    r.bulk_insert([(1, 10), (2, 20), (3, 30)])
    program = Program()
    program.declare_base("q", 2)
    program.declare_base("r", 2)
    return db, program


def evaluator(db, program, deltas=None):
    return Evaluator(program, NewStateView(db), deltas=deltas)


class TestBaseEvaluation:
    def test_full_scan(self, setup):
        db, program = setup
        rows = {tuple(env[v] for v in (X, Y))
                for env in evaluator(db, program).query("q", (X, Y))}
        assert rows == {(1, 1), (1, 2), (2, 3)}

    def test_bound_argument_probes(self, setup):
        db, program = setup
        envs = list(evaluator(db, program).query("q", (1, Y)))
        assert {env[Y] for env in envs} == {1, 2}

    def test_constant_mismatch_fails(self, setup):
        db, program = setup
        assert list(evaluator(db, program).query("q", (9, Y))) == []

    def test_join_via_shared_variable(self, setup):
        db, program = setup
        body = [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))]
        solutions = {
            (env[X], env[Y], env[Z])
            for env in evaluator(db, program).solve_body(body)
        }
        assert solutions == {(1, 1, 10), (1, 2, 20), (2, 3, 30)}

    def test_repeated_variable_is_selection(self, setup):
        db, program = setup
        envs = list(evaluator(db, program).query("q", (X, X)))
        assert [env[X] for env in envs] == [1]


class TestBuiltins:
    def test_comparison_filters(self, setup):
        db, program = setup
        body = [PredLiteral("q", (X, Y)), Comparison("<", X, Y)]
        solutions = {(env[X], env[Y])
                     for env in evaluator(db, program).solve_body(body)}
        assert solutions == {(1, 2), (2, 3)}

    def test_assignment_binds(self, setup):
        db, program = setup
        body = [
            PredLiteral("q", (X, Y)),
            Assignment(Z, Arith("*", Y, 10)),
            Comparison(">", Z, 15),
        ]
        solutions = {(env[X], env[Z])
                     for env in evaluator(db, program).solve_body(body)}
        assert solutions == {(1, 20), (2, 30)}

    def test_assignment_checks_when_bound(self, setup):
        db, program = setup
        body = [PredLiteral("q", (X, Y)), Assignment(Y, Arith("+", X, 1))]
        solutions = {(env[X], env[Y])
                     for env in evaluator(db, program).solve_body(body)}
        assert solutions == {(1, 2), (2, 3)}

    def test_builtins_scheduled_after_binding(self, setup):
        """Comparison written FIRST still runs once its inputs are bound."""
        db, program = setup
        body = [Comparison("<", X, Y), PredLiteral("q", (X, Y))]
        solutions = {(env[X], env[Y])
                     for env in evaluator(db, program).solve_body(body)}
        assert solutions == {(1, 2), (2, 3)}

    def test_unbindable_comparison_is_unsafe(self, setup):
        db, program = setup
        with pytest.raises(UnsafeClauseError):
            list(evaluator(db, program).solve_body([Comparison("<", X, Y)]))


class TestNegation:
    def test_negation_as_absence(self, setup):
        db, program = setup
        body = [PredLiteral("r", (X, Y)), PredLiteral("q", (X, X), negated=True)]
        solutions = {env[X] for env in evaluator(db, program).solve_body(body)}
        assert solutions == {2, 3}  # q(1,1) exists, q(2,2)/q(3,3) don't

    def test_negation_waits_for_bindings(self, setup):
        db, program = setup
        body = [PredLiteral("q", (X, X), negated=True), PredLiteral("r", (X, Y))]
        solutions = {env[X] for env in evaluator(db, program).solve_body(body)}
        assert solutions == {2, 3}

    def test_unbound_negation_is_unsafe(self, setup):
        db, program = setup
        with pytest.raises(UnsafeClauseError):
            list(
                evaluator(db, program).solve_body(
                    [PredLiteral("q", (X, Y), negated=True)]
                )
            )


class TestDerived:
    def test_derived_predicate(self, setup):
        db, program = setup
        program.declare_derived("p", 2)
        program.add_clause(
            HornClause(
                PredLiteral("p", (X, Z)),
                [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
            )
        )
        assert evaluator(db, program).extension("p") == {
            (1, 10),
            (1, 20),
            (2, 30),
        }

    def test_derived_with_bound_argument(self, setup):
        db, program = setup
        program.declare_derived("p", 2)
        program.add_clause(
            HornClause(
                PredLiteral("p", (X, Z)),
                [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
            )
        )
        envs = list(evaluator(db, program).query("p", (2, Z)))
        assert [env[Z] for env in envs] == [30]

    def test_multiple_clauses_union(self, setup):
        db, program = setup
        program.declare_derived("u", 1)
        program.add_clause(HornClause(PredLiteral("u", (X,)), [PredLiteral("q", (X, X))]))
        program.add_clause(HornClause(PredLiteral("u", (X,)), [PredLiteral("r", (X, 30))]))
        assert evaluator(db, program).extension("u") == {(1,), (3,)}

    def test_set_semantics_dedup_across_clauses(self, setup):
        db, program = setup
        program.declare_derived("d", 1)
        # both clauses derive (1,)
        program.add_clause(HornClause(PredLiteral("d", (X,)), [PredLiteral("q", (X, 1))]))
        program.add_clause(HornClause(PredLiteral("d", (X,)), [PredLiteral("q", (X, 2))]))
        envs = list(evaluator(db, program).query("d", (X,)))
        assert [env[X] for env in envs] == [1]

    def test_recursion_detected(self, setup):
        db, program = setup
        program.declare_derived("t", 2)
        program.add_clause(HornClause(PredLiteral("t", (X, Y)), [PredLiteral("q", (X, Y))]))
        program.add_clause(
            HornClause(
                PredLiteral("t", (X, Z)),
                [PredLiteral("q", (X, Y)), PredLiteral("t", (Y, Z))],
            )
        )
        with pytest.raises(RecursionNotSupportedError):
            evaluator(db, program).extension("t")

    def test_holds_membership(self, setup):
        db, program = setup
        program.declare_derived("p", 2)
        program.add_clause(
            HornClause(
                PredLiteral("p", (X, Z)),
                [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
            )
        )
        ev = evaluator(db, program)
        assert ev.holds("p", (1, 10))
        assert not ev.holds("p", (1, 30))

    def test_memoization_caches_extensions(self, setup):
        db, program = setup
        program.declare_derived("p", 1)
        program.add_clause(HornClause(PredLiteral("p", (X,)), [PredLiteral("q", (X, X))]))
        ev = evaluator(db, program)
        first = ev.extension("p")
        db.relation("q").insert((5, 5))  # memo must NOT see this
        assert ev.extension("p") == first

    def test_unknown_predicate(self, setup):
        db, program = setup
        with pytest.raises(UnknownPredicateError):
            list(evaluator(db, program).query("nope", (X,)))


class TestForeign:
    def test_foreign_function(self, setup):
        db, program = setup
        program.declare_foreign("double", 2, 1, lambda x: [(x * 2,)])
        body = [PredLiteral("q", (X, Y)), PredLiteral("double", (Y, Z))]
        solutions = {(env[Y], env[Z])
                     for env in evaluator(db, program).solve_body(body)}
        assert solutions == {(1, 2), (2, 4), (3, 6)}

    def test_foreign_scalar_results(self, setup):
        db, program = setup
        program.declare_foreign("inc", 2, 1, lambda x: [x + 1])
        envs = list(evaluator(db, program).query("inc", (4, Z)))
        assert [env[Z] for env in envs] == [5]

    def test_foreign_test_only(self, setup):
        db, program = setup
        program.declare_foreign("is_even", 1, 1, lambda x: x % 2 == 0)
        body = [PredLiteral("q", (X, Y)), PredLiteral("is_even", (Y,))]
        solutions = {env[Y] for env in evaluator(db, program).solve_body(body)}
        assert solutions == {2}

    def test_foreign_waits_for_inputs(self, setup):
        db, program = setup
        program.declare_foreign("double", 2, 1, lambda x: [(x * 2,)])
        body = [PredLiteral("double", (Y, Z)), PredLiteral("q", (X, Y))]
        solutions = {env[Z] for env in evaluator(db, program).solve_body(body)}
        assert solutions == {2, 4, 6}

    def test_foreign_unbound_inputs_unsafe(self, setup):
        db, program = setup
        program.declare_foreign("double", 2, 1, lambda x: [(x * 2,)])
        with pytest.raises(UnsafeClauseError):
            list(evaluator(db, program).solve_body([PredLiteral("double", (Y, Z))]))


class TestDeltaLiterals:
    def test_delta_literal_reads_delta_env(self, setup):
        db, program = setup
        deltas = {"q": DeltaSet({(7, 8)}, {(1, 1)})}
        ev = evaluator(db, program, deltas=deltas)
        plus = {(env[X], env[Y])
                for env in ev.solve_body([PredLiteral("q", (X, Y), delta="+")])}
        minus = {(env[X], env[Y])
                 for env in ev.solve_body([PredLiteral("q", (X, Y), delta="-")])}
        assert plus == {(7, 8)}
        assert minus == {(1, 1)}

    def test_missing_delta_is_empty(self, setup):
        db, program = setup
        ev = evaluator(db, program)
        assert list(ev.solve_body([PredLiteral("q", (X, Y), delta="+")])) == []

    def test_delta_literal_scheduled_first(self, setup):
        """The delta read must drive the join (it is the small side)."""
        db, program = setup
        deltas = {"q": DeltaSet({(1, 2)}, set())}
        ev = evaluator(db, program, deltas=deltas)
        body = [PredLiteral("r", (Y, Z)), PredLiteral("q", (X, Y), delta="+")]
        solutions = {(env[X], env[Z]) for env in ev.solve_body(body)}
        assert solutions == {(1, 20)}


class TestOldStateEvaluation:
    def test_same_engine_evaluates_old_state(self, setup):
        db, program = setup
        db.relation("q").insert((9, 9))
        db.relation("q").delete((1, 1))
        deltas = {"q": DeltaSet({(9, 9)}, {(1, 1)})}
        old_ev = Evaluator(program, OldStateView(db, deltas))
        rows = {(env[X], env[Y]) for env in old_ev.query("q", (X, Y))}
        assert rows == {(1, 1), (1, 2), (2, 3)}

    def test_solve_clause_yields_head_rows(self, setup):
        db, program = setup
        clause = HornClause(
            PredLiteral("p", (X, Z)),
            [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
        )
        rows = set(evaluator(db, program).solve_clause(clause))
        assert rows == {(1, 10), (1, 20), (2, 30)}


class TestDeltaIndex:
    """Keyed probes into large delta-sets (the Fig. 7 massive-update
    path): at or above DELTA_INDEX_THRESHOLD rows, a bound delta read
    must go through a per-run key index instead of scanning."""

    def big_delta(self, n=20):
        return DeltaSet(frozenset((i, i * 10) for i in range(n)), frozenset())

    def test_large_delta_probe_is_indexed(self, setup):
        from repro.obs import metrics

        db, program = setup
        ev = evaluator(db, program, deltas={"q": self.big_delta()})
        with metrics.collecting() as registry:
            envs = list(ev.solve_body([PredLiteral("q", (7, Y), delta="+")]))
        assert [env[Y] for env in envs] == [70]
        assert registry.value("evaluate.delta_indexes_built") == 1
        # the probe touched only the matching row, not the whole delta
        assert registry.value("evaluate.delta_rows") == 1

    def test_small_delta_scans_without_index(self, setup):
        from repro.obs import metrics

        db, program = setup
        small = DeltaSet(frozenset({(1, 10), (2, 20)}), frozenset())
        ev = evaluator(db, program, deltas={"q": small})
        with metrics.collecting() as registry:
            envs = list(ev.solve_body([PredLiteral("q", (1, Y), delta="+")]))
        assert [env[Y] for env in envs] == [10]
        assert registry.value("evaluate.delta_indexes_built") == 0

    def test_index_cached_per_column_set(self, setup):
        db, program = setup
        ev = evaluator(db, program, deltas={"q": self.big_delta()})
        first = ev.delta_index("q", "+", (0,))
        assert ev.delta_index("q", "+", (0,)) is first
        assert ev.delta_index("q", "+", (1,)) is not first

    def test_set_delta_same_object_keeps_index_warm(self, setup):
        db, program = setup
        delta = self.big_delta()
        ev = evaluator(db, program, deltas={"q": delta})
        index = ev.delta_index("q", "+", (0,))
        ev.set_delta("q", delta)  # no-op: same object
        assert ev.delta_index("q", "+", (0,)) is index

    def test_set_delta_new_object_invalidates_index(self, setup):
        db, program = setup
        ev = evaluator(db, program, deltas={"q": self.big_delta()})
        stale = ev.delta_index("q", "+", (0,))
        replacement = DeltaSet(frozenset({(99, 1)}), frozenset())
        ev.set_delta("q", replacement)
        fresh = ev.delta_index("q", "+", (0,))
        assert fresh is not stale
        assert fresh == {(99,): [(99, 1)]}


class TestCompiledDerived:
    """compile_derived=True answers derived probes through compiled
    ClausePlans; results must be indistinguishable from the
    interpretive path (the batch propagator's shared evaluators opt
    in, so every sub-derivation of a check phase rides on plans)."""

    def build(self):
        db = Database()
        q = db.create_relation("q", 2)
        r = db.create_relation("r", 2)
        q.bulk_insert([(1, 1), (1, 2), (2, 3)])
        r.bulk_insert([(1, 10), (2, 20), (3, 30)])
        program = Program()
        program.declare_base("q", 2)
        program.declare_base("r", 2)
        program.declare_derived("p", 2)
        program.add_clause(
            HornClause(
                PredLiteral("p", (X, Z)),
                [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
            )
        )
        return db, program

    def pair(self):
        db, program = self.build()
        view = NewStateView(db)
        return (
            Evaluator(program, view, compile_derived=True),
            Evaluator(program, view),
        )

    def test_matches_interpretive_path(self):
        compiled, interpretive = self.pair()
        definition = compiled.program.predicate("p")
        for bound in [
            (),
            ((0, 1),),
            ((1, 10),),
            ((0, 1), (1, 10)),
            ((0, 9),),
            ((1, 99),),
        ]:
            assert compiled.derived_rows(
                definition, bound
            ) == interpretive.derived_rows(definition, bound)

    def test_plans_compiled_once_per_bound_shape(self):
        compiled, _ = self.pair()
        definition = compiled.program.predicate("p")
        compiled.derived_rows(definition, ((0, 1),))
        entry = compiled._derived_plans[("p", (0,))]
        compiled.reset()
        compiled.derived_rows(definition, ((0, 2),))
        assert compiled._derived_plans[("p", (0,))] is entry

    def test_redefinition_invalidates_plans(self):
        compiled, _ = self.pair()
        program = compiled.program
        definition = program.predicate("p")
        assert compiled.derived_rows(definition, ((0, 9),)) == frozenset()
        program.add_clause(
            HornClause(PredLiteral("p", (X, Y)), [PredLiteral("r", (X, Y))])
        )
        # clauses changed: stale plans must not answer the new shape
        assert (9, None) not in compiled._derived_plans
        compiled.reset()  # memo, not plans, held the old answer
        assert compiled.derived_rows(definition, ((0, 3),)) == {(3, 30)}

    def test_constant_head_positions(self):
        db, program = self.build()
        program.declare_derived("fixed", 2)
        program.add_clause(
            HornClause(
                PredLiteral("fixed", (1, Y)), [PredLiteral("q", (1, Y))]
            )
        )
        compiled = Evaluator(program, NewStateView(db), compile_derived=True)
        plain = Evaluator(program, NewStateView(db))
        definition = program.predicate("fixed")
        for bound in [(), ((0, 1),), ((0, 2),), ((0, 1), (1, 2))]:
            assert compiled.derived_rows(
                definition, bound
            ) == plain.derived_rows(definition, bound)

    def test_old_state_evaluator_compiles_too(self):
        db, program = self.build()
        view = OldStateView(db, {"q": DeltaSet(plus=frozenset({(2, 3)}))})
        compiled = Evaluator(program, view, compile_derived=True)
        plain = Evaluator(program, view)
        definition = program.predicate("p")
        rows = compiled.derived_rows(definition, ())
        assert rows == plain.derived_rows(definition, ())
        assert (2, 30) not in rows  # (2,3) was inserted this txn
