"""Tests for full expansion of derived predicates (the AMOS compiler step)."""

import pytest

from repro.errors import RecursionNotSupportedError
from repro.objectlog.clause import HornClause
from repro.objectlog.expand import expand_predicate, substitute_literal
from repro.objectlog.literals import Assignment, Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Arith, Variable

X, Y, Z, T = Variable("X"), Variable("Y"), Variable("Z"), Variable("T")


def clause(head, *body):
    return HornClause(head, list(body))


@pytest.fixture
def program():
    p = Program()
    p.declare_base("q", 2)
    p.declare_base("r", 2)
    p.declare_base("s", 2)
    return p


def body_preds(horn_clause):
    return sorted(l.pred for l in horn_clause.pred_literals())


class TestExpansion:
    def test_single_level_inlining(self, program):
        program.declare_derived("mid", 2)
        program.add_clause(clause(PredLiteral("mid", (X, Y)),
                                  PredLiteral("q", (X, Y))))
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Z)),
                                  PredLiteral("mid", (X, Y)),
                                  PredLiteral("r", (Y, Z))))
        expanded = expand_predicate(program, "p")
        assert len(expanded) == 1
        assert body_preds(expanded[0]) == ["q", "r"]

    def test_nested_inlining_with_builtins(self, program):
        """threshold-style: an arithmetic body survives expansion."""
        program.declare_derived("thresh", 2)
        program.add_clause(clause(
            PredLiteral("thresh", (X, T)),
            PredLiteral("q", (X, Y)),
            Assignment(T, Arith("*", Y, 2)),
        ))
        program.declare_derived("cond", 1)
        program.add_clause(clause(
            PredLiteral("cond", (X,)),
            PredLiteral("r", (X, Z)),
            PredLiteral("thresh", (X, T)),
            Comparison("<", Z, T),
        ))
        expanded = expand_predicate(program, "cond")
        assert len(expanded) == 1
        assert body_preds(expanded[0]) == ["q", "r"]
        kinds = [type(l).__name__ for l in expanded[0].body]
        assert "Assignment" in kinds and "Comparison" in kinds

    def test_disjunction_multiplies_clauses(self, program):
        program.declare_derived("either", 2)
        program.add_clause(clause(PredLiteral("either", (X, Y)), PredLiteral("q", (X, Y))))
        program.add_clause(clause(PredLiteral("either", (X, Y)), PredLiteral("r", (X, Y))))
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Z)),
                                  PredLiteral("either", (X, Y)),
                                  PredLiteral("either", (Y, Z))))
        expanded = expand_predicate(program, "p")
        assert len(expanded) == 4  # 2 x 2 DNF

    def test_keep_stops_expansion(self, program):
        program.declare_derived("mid", 2)
        program.add_clause(clause(PredLiteral("mid", (X, Y)), PredLiteral("q", (X, Y))))
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Y)), PredLiteral("mid", (X, Y))))
        expanded = expand_predicate(program, "p", keep=frozenset({"mid"}))
        assert body_preds(expanded[0]) == ["mid"]

    def test_negated_literal_never_expanded(self, program):
        program.declare_derived("bad", 1)
        program.add_clause(clause(PredLiteral("bad", (X,)), PredLiteral("q", (X, X))))
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Y)),
                                  PredLiteral("r", (X, Y)),
                                  PredLiteral("bad", (X,), negated=True)))
        expanded = expand_predicate(program, "p")
        negated = [l for l in expanded[0].pred_literals() if l.negated]
        assert [l.pred for l in negated] == ["bad"]

    def test_variables_standardized_apart(self, program):
        """Two calls to the same derived pred must not share inner vars."""
        program.declare_derived("mid", 2)
        program.add_clause(clause(PredLiteral("mid", (X, Z)),
                                  PredLiteral("q", (X, Y)),
                                  PredLiteral("r", (Y, Z))))
        program.declare_derived("p", 2)
        A, B, C = Variable("A"), Variable("B"), Variable("C")
        program.add_clause(clause(PredLiteral("p", (A, C)),
                                  PredLiteral("mid", (A, B)),
                                  PredLiteral("mid", (B, C))))
        expanded = expand_predicate(program, "p")
        assert len(expanded) == 1
        q_literals = [l for l in expanded[0].pred_literals() if l.pred == "q"]
        assert len(q_literals) == 2
        # the two q-literal second args are the two DISTINCT join variables
        assert q_literals[0].args[1] != q_literals[1].args[1]

    def test_constant_head_arg_unification(self, program):
        program.declare_derived("one", 1)
        program.add_clause(clause(PredLiteral("one", (1,)), PredLiteral("q", (1, 1))))
        program.declare_derived("p", 1)
        program.add_clause(clause(PredLiteral("p", (X,)), PredLiteral("one", (X,))))
        expanded = expand_predicate(program, "p")
        # X must be bound to the constant 1 via an assignment
        assert len(expanded) == 1
        assert any(
            isinstance(l, Assignment) and l.var == X for l in expanded[0].body
        )

    def test_constant_conflict_drops_clause(self, program):
        program.declare_derived("one", 1)
        program.add_clause(clause(PredLiteral("one", (1,)), PredLiteral("q", (1, 1))))
        program.declare_derived("p", 1)
        program.add_clause(clause(PredLiteral("p", (2,)), PredLiteral("one", (2,))))
        assert expand_predicate(program, "p") == []

    def test_recursion_rejected(self, program):
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Z)),
                                  PredLiteral("q", (X, Y)),
                                  PredLiteral("p", (Y, Z))))
        with pytest.raises(RecursionNotSupportedError):
            expand_predicate(program, "p")

    def test_base_predicate_expands_to_nothing(self, program):
        assert expand_predicate(program, "q") == []


class TestSubstituteLiteral:
    def test_pred_literal(self):
        lit = substitute_literal(PredLiteral("q", (X, Y)), {X: 5})
        assert lit.args == (5, Y)

    def test_comparison(self):
        lit = substitute_literal(Comparison("<", X, Arith("+", Y, 1)), {Y: 2})
        assert lit.holds({X: 2})

    def test_assignment_to_constant_becomes_check(self):
        lit = substitute_literal(Assignment(X, Y), {X: 5})
        assert isinstance(lit, Comparison)
        assert lit.holds({Y: 5})
        assert not lit.holds({Y: 6})
