"""Tests for the worst-case-optimal join kernel (repro.objectlog.join).

Three layers: the :class:`TrieIndex` structure itself (incremental
maintenance, pruning, budget/eviction via the relation), the fused
kernel step (plan-choice heuristic, equivalence against the pairwise
chain), and the intermediate-result economy the kernel exists for (a
triangle query whose pairwise intermediates dwarf the output).
"""

import itertools
import random

import pytest

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView
from repro.errors import SchemaError, UnsafeClauseError
from repro.objectlog.batch import compile_plan
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.join import TrieIndex, compile_wcoj_step, wcoj_variable_order
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.obs import metrics
from repro.storage.database import Database

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestTrieIndex:
    def test_rejects_non_permutation(self):
        with pytest.raises(SchemaError):
            TrieIndex((0, 0))
        with pytest.raises(SchemaError):
            TrieIndex((1, 2))

    def test_add_contains_len(self):
        trie = TrieIndex((0, 1))
        rows = [(1, 2), (1, 3), (2, 2)]
        trie.bulk_load(rows)
        assert len(trie) == 3
        assert all(row in trie for row in rows)
        assert (9, 9) not in trie
        trie.add((1, 2))  # set semantics: re-add is a no-op
        assert len(trie) == 3

    def test_permuted_order_groups_by_that_column(self):
        trie = TrieIndex((1, 0))
        trie.bulk_load([(1, 5), (2, 5), (3, 6)])
        assert set(trie.root) == {5, 6}
        assert set(trie.root[5]) == {1, 2}

    def test_remove_prunes_empty_interior_nodes(self):
        trie = TrieIndex((0, 1, 2))
        trie.add((1, 2, 3))
        trie.add((1, 2, 4))
        trie.remove((1, 2, 3))
        assert len(trie) == 1
        trie.remove((1, 2, 4))
        # the whole branch must be gone: candidate-set sizes drive the
        # kernel's leader choice, stale empty dicts would skew it
        assert trie.root == {}
        trie.remove((1, 2, 4))  # absent row: no-op
        assert trie.root == {}

    def test_random_churn_matches_set_semantics(self):
        rng = random.Random(7)
        trie = TrieIndex((2, 0, 1))
        reference = set()
        for _ in range(500):
            row = (rng.randrange(4), rng.randrange(4), rng.randrange(4))
            if rng.random() < 0.5:
                trie.add(row)
                reference.add(row)
            else:
                trie.remove(row)
                reference.discard(row)
        assert len(trie) == len(reference)
        assert all(row in trie for row in reference)


class TestRelationTrieMaintenance:
    def test_tries_follow_insert_delete_clear(self):
        db = Database()
        relation = db.create_relation("e", 2)
        relation.bulk_insert([(1, 2), (2, 3)])
        trie = relation.trie_index((1, 0))
        assert len(trie) == 2
        relation.insert((3, 4))
        relation.delete((1, 2))
        assert (3, 4) in trie and (1, 2) not in trie
        relation.clear()
        assert len(trie) == 0

    def test_auto_trie_budget_evicts_lru(self):
        db = Database()
        relation = db.create_relation("wide", 4)
        relation.insert((1, 2, 3, 4))
        budget = relation.TRIE_INDEX_BUDGET
        orders = list(itertools.permutations(range(4)))[: budget + 1]
        with metrics.collecting() as reg:
            for order in orders:
                relation.trie_index(order, auto=True)
        assert len(relation.tries) == budget
        assert reg.counters()["join.trie_evictions"] == 1
        # the evicted permutation was the least recently used (first)
        assert orders[0] not in relation.tries

    def test_epoch_bumps_on_build_and_eviction(self):
        db = Database()
        relation = db.create_relation("e", 2)
        before = relation.index_epoch
        relation.trie_index((0, 1), auto=True)
        assert relation.index_epoch > before


@pytest.fixture
def triangle():
    """A skewed triangle instance: hub 0 fans out to everything."""
    db = Database()
    program = Program()
    for name in ("e1", "e2", "e3"):
        program.declare_base(name, 2)
        db.create_relation(name, 2)
    rng = random.Random(3)
    rows = {(0, k) for k in range(1, 40)} | {
        (rng.randrange(8), rng.randrange(8)) for _ in range(60)
    }
    for name in ("e1", "e2", "e3"):
        db.relation(name).bulk_insert(rows)
    return db, program, rows


def pairwise_and_wcoj(db, program, head, body, bound_vars=()):
    clause = HornClause(PredLiteral("out", tuple(head)), list(body))
    plain = compile_plan(clause, program, bound_vars=bound_vars)
    fused = compile_plan(clause, program, bound_vars=bound_vars, wcoj=True)
    evaluator = Evaluator(program, NewStateView(db))
    return plain, fused, evaluator


class TestKernelEquivalence:
    def test_triangle_matches_pairwise(self, triangle):
        db, program, rows = triangle
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ]
        plain, fused, evaluator = pairwise_and_wcoj(db, program, (X, Y, Z), body)
        assert plain.fused == 0 and fused.fused == 3
        expected = {
            (x, y, z)
            for x, y in rows
            for z in range(8 if x or y else 40)
            if (y, z) in rows and (x, z) in rows
        }
        assert set(fused.rows(evaluator)) == set(plain.rows(evaluator))
        assert set(fused.rows(evaluator)) >= expected

    def test_filters_and_projection_still_apply(self, triangle):
        db, program, _ = triangle
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
            Comparison("<", Z, 5),
        ]
        plain, fused, evaluator = pairwise_and_wcoj(db, program, (X, Z), body)
        assert fused.fused == 3
        assert sorted(fused.rows(evaluator)) == sorted(plain.rows(evaluator))

    def test_bound_seeds_prefix_the_tries(self, triangle):
        """Delta-style seeding: X pre-bound, kernel joins Y then Z."""
        db, program, rows = triangle
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ]
        plain, fused, evaluator = pairwise_and_wcoj(
            db, program, (X, Y, Z), body, bound_vars=(X,)
        )
        assert fused.fused == 3
        seeds = [[x, None, None] for x in range(3)]
        got = fused.execute(evaluator, [list(s) for s in seeds])
        want = plain.execute(evaluator, [list(s) for s in seeds])
        assert sorted(map(tuple, got)) == sorted(map(tuple, want))
        assert got, "seeded execution must produce rows"

    def test_repeated_variable_within_literal(self, triangle):
        db, program, _ = triangle
        db.relation("e1").insert((4, 4))
        body = [
            PredLiteral("e1", (X, X)),
            PredLiteral("e2", (X, Y)),
            PredLiteral("e3", (Y, Z)),
        ]
        plain, fused, evaluator = pairwise_and_wcoj(db, program, (X, Y, Z), body)
        assert sorted(fused.rows(evaluator)) == sorted(plain.rows(evaluator))

    def test_constant_argument_joins_through_prefix(self, triangle):
        db, program, _ = triangle
        body = [
            PredLiteral("e1", (0, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (Z, W)),
        ]
        plain, fused, evaluator = pairwise_and_wcoj(db, program, (Y, Z, W), body)
        assert sorted(fused.rows(evaluator)) == sorted(plain.rows(evaluator))

    def test_counters_and_step_metadata(self, triangle):
        db, program, _ = triangle
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ]
        with metrics.collecting() as reg:
            plain, fused, evaluator = pairwise_and_wcoj(
                db, program, (X, Y, Z), body
            )
            fused.rows(evaluator)
        counters = reg.counters()
        assert counters["join.plans_wcoj"] == 1
        assert counters["join.kernel_runs"] == 1
        assert counters["join.kernel_emits"] == len(set(plain.rows(evaluator)))
        assert counters["join.trie_builds"] == 3


class TestPlanChoice:
    def test_two_way_join_stays_pairwise(self):
        program = Program()
        program.declare_base("q", 2)
        program.declare_base("r", 2)
        clause = HornClause(
            PredLiteral("out", (X, Z)),
            [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
        )
        with metrics.collecting() as reg:
            plan = compile_plan(clause, program, wcoj=True)
        assert plan.fused == 0
        assert reg.counters()["join.plans_pairwise"] == 1

    def test_negated_literals_never_fuse(self, triangle):
        db, program, _ = triangle
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z), negated=True),
        ]
        plain, fused, evaluator = pairwise_and_wcoj(db, program, (X, Y, Z), body)
        assert fused.fused == 0  # only 2 fusable candidates, one negated
        assert sorted(fused.rows(evaluator)) == sorted(plain.rows(evaluator))

    def test_two_member_residual_stays_pairwise(self, triangle):
        """Excluding the delta literal leaves only e2 ⋈ e3 — a single
        join, for which the pairwise chain is already worst-case
        optimal (every intermediate binding is an output row), so the
        compiler keeps the chain rather than paying kernel constants."""
        db, program, _ = triangle
        deltas = {"e1": DeltaSet(plus=[(0, 1), (0, 2)])}
        body = [
            PredLiteral("e1", (X, Y), delta="+"),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ]
        clause = HornClause(PredLiteral("out", (X, Y, Z)), body)
        plain = compile_plan(clause, program)
        fused = compile_plan(clause, program, wcoj=True)
        assert fused.fused == 0
        ev = Evaluator(program, NewStateView(db), deltas=deltas)
        assert sorted(fused.rows(ev)) == sorted(plain.rows(ev))

    def test_delta_anchored_residual_of_three_fuses(self, triangle):
        """With three connected base reads left after the delta
        literal, the kernel engages and matches the chain."""
        db, program, rows = triangle
        program.declare_base("e4", 2)
        db.create_relation("e4", 2).bulk_insert(rows)
        deltas = {"e1": DeltaSet(plus=[(0, 1), (0, 2), (3, 4)])}
        body = [
            PredLiteral("e1", (X, Y), delta="+"),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
            PredLiteral("e4", (Z, W)),
        ]
        clause = HornClause(PredLiteral("out", (X, Y, Z, W)), body)
        plain = compile_plan(clause, program)
        fused = compile_plan(clause, program, wcoj=True)
        assert fused.fused == 3
        ev = Evaluator(program, NewStateView(db), deltas=deltas)
        assert sorted(fused.rows(ev)) == sorted(plain.rows(ev))

    def test_disconnected_literal_excluded_from_group(self):
        """a, c and d share join variables and fuse; b is a cross
        product with no shared free variable and must stay a pairwise
        step."""
        program = Program()
        db = Database()
        for name in ("a", "b", "c", "d"):
            program.declare_base(name, 2)
            db.create_relation(name, 2)
        db.relation("a").bulk_insert([(1, 2), (3, 4)])
        db.relation("c").bulk_insert([(1, 2), (5, 6)])
        db.relation("d").bulk_insert([(2, 0), (4, 0)])
        db.relation("b").bulk_insert([(7, 8), (9, 10)])
        V = Variable("V")
        clause = HornClause(
            PredLiteral("out", (X, Y, Z, W, V)),
            [
                PredLiteral("a", (X, Y)),
                PredLiteral("b", (Z, W)),
                PredLiteral("c", (X, Y)),
                PredLiteral("d", (Y, V)),
            ],
        )
        plain = compile_plan(clause, program)
        fused = compile_plan(clause, program, wcoj=True)
        assert fused.fused == 3
        evaluator = Evaluator(program, NewStateView(db))
        assert sorted(fused.rows(evaluator)) == sorted(plain.rows(evaluator))
        assert set(fused.rows(evaluator)) == {
            (1, 2, 7, 8, 0),
            (1, 2, 9, 10, 0),
        }


class TestVariableOrder:
    def test_most_shared_first_name_tiebreak(self):
        literals = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ]
        slot_of = {X: 0, Y: 1, Z: 2}
        order = wcoj_variable_order(literals, slot_of, set())
        assert order == [X, Y, Z]  # all count 2: name order

    def test_bound_slots_excluded(self):
        literals = [PredLiteral("e1", (X, Y)), PredLiteral("e2", (Y, Z))]
        slot_of = {X: 0, Y: 1, Z: 2}
        assert wcoj_variable_order(literals, slot_of, {0}) == [Y, Z]

    def test_empty_group_rejected(self):
        with pytest.raises(UnsafeClauseError):
            compile_wcoj_step(
                [PredLiteral("e1", (X,))], {X: 0}, {0}
            )


class TestWorstCaseEconomy:
    def test_kernel_emits_bounded_by_output_not_intermediates(self):
        """Hub-skewed triangle: every pairwise order materializes the
        hub fan-out squared; the kernel's emit count equals the output."""
        db = Database()
        program = Program()
        n = 60
        # e1: hub -> spokes, e2: spokes -> hub, e3 only (hub, hub)
        e1 = {(0, k) for k in range(1, n)}
        e2 = {(k, 0) for k in range(1, n)}
        e3 = {(0, 0)}
        for name, rows in (("e1", e1), ("e2", e2), ("e3", e3)):
            program.declare_base(name, 2)
            db.create_relation(name, 2).bulk_insert(rows)
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ]
        clause = HornClause(PredLiteral("out", (X, Y, Z)), body)
        fused = compile_plan(clause, program, wcoj=True)
        with metrics.collecting() as reg:
            rows = fused.rows(Evaluator(program, NewStateView(db)))
        assert len(set(rows)) == n - 1  # (0, k, 0) for each spoke
        assert reg.counters()["join.kernel_emits"] == n - 1
