"""Tests for ObjectLog body literals."""

import pytest

from repro.errors import ObjectLogError
from repro.objectlog.literals import Assignment, Comparison, PredLiteral
from repro.objectlog.terms import Arith, Variable

X = Variable("X")
Y = Variable("Y")


class TestPredLiteral:
    def test_basic(self):
        literal = PredLiteral("q", (X, 3))
        assert literal.arity == 2
        assert literal.variables() == {X}
        assert repr(literal) == "q(X, 3)"

    def test_negated_repr(self):
        assert repr(PredLiteral("q", (X,), negated=True)) == "~q(X)"

    def test_delta_marker(self):
        literal = PredLiteral("q", (X,)).with_delta("+")
        assert literal.delta == "+"
        assert repr(literal) == "Δ+q(X)"
        with pytest.raises(ObjectLogError):
            PredLiteral("q", (X,), delta="?")

    def test_delta_and_negation_exclusive(self):
        with pytest.raises(ObjectLogError):
            PredLiteral("q", (X,), negated=True, delta="+")

    def test_rename(self):
        renamed = PredLiteral("q", (X, Y, 5)).rename({X: Variable("Z")})
        assert renamed.args == (Variable("Z"), Y, 5)

    def test_substitute(self):
        literal = PredLiteral("q", (X, Y)).substitute({X: 7})
        assert literal.args == (7, Y)

    def test_equality(self):
        assert PredLiteral("q", (X,)) == PredLiteral("q", (X,))
        assert PredLiteral("q", (X,)) != PredLiteral("q", (X,), negated=True)
        assert PredLiteral("q", (X,)) != PredLiteral("q", (X,), delta="+")


class TestComparison:
    def test_holds(self):
        assert Comparison("<", X, 5).holds({X: 3})
        assert not Comparison("<", X, 5).holds({X: 7})
        assert Comparison("=", Arith("+", X, 1), 4).holds({X: 3})
        assert Comparison("!=", X, Y).holds({X: 1, Y: 2})
        assert Comparison(">=", X, X).holds({X: 1})

    def test_unknown_operator(self):
        with pytest.raises(ObjectLogError):
            Comparison("~", X, Y)

    def test_variables_and_rename(self):
        comparison = Comparison("<", Arith("*", X, 2), Y)
        assert comparison.variables() == {X, Y}
        renamed = comparison.rename({Y: Variable("Z")})
        assert Variable("Z") in renamed.variables()

    def test_repr(self):
        assert repr(Comparison("<", X, 5)) == "X < 5"


class TestAssignment:
    def test_target_must_be_variable(self):
        with pytest.raises(ObjectLogError):
            Assignment(5, X)

    def test_variables_split(self):
        assignment = Assignment(X, Arith("*", Y, 3))
        assert assignment.variables() == {X, Y}
        assert assignment.input_variables() == {Y}

    def test_rename(self):
        renamed = Assignment(X, Y).rename({X: Variable("A"), Y: Variable("B")})
        assert renamed.var == Variable("A")
        assert renamed.input_variables() == {Variable("B")}

    def test_repr(self):
        assert repr(Assignment(X, Arith("+", Y, 1))) == "X = (Y + 1)"
