"""Tests for static clause-body ordering (the differential optimizer)."""

import pytest

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView
from repro.errors import UnsafeClauseError
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import Assignment, Comparison, PredLiteral
from repro.objectlog.optimize import order_body, order_clause
from repro.objectlog.program import Program
from repro.objectlog.terms import Arith, Variable
from repro.storage.database import Database

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


@pytest.fixture
def program():
    p = Program()
    p.declare_base("q", 2)
    p.declare_base("r", 2)
    p.declare_derived("d", 2)
    p.add_clause(HornClause(PredLiteral("d", (X, Y)), [PredLiteral("q", (X, Y))]))
    p.declare_foreign("f", 2, 1, lambda x: [(x,)])
    return p


class TestOrderBody:
    def test_delta_literal_first(self, program):
        body = [
            PredLiteral("r", (Y, Z)),
            Comparison("<", Y, Z),
            PredLiteral("q", (X, Y), delta="+"),
        ]
        ordered = order_body(body, program)
        assert ordered[0].delta == "+"

    def test_ready_builtins_run_as_soon_as_bound(self, program):
        body = [
            PredLiteral("q", (X, Y)),
            PredLiteral("r", (Y, Z)),
            Comparison("<", X, Y),
        ]
        ordered = order_body(body, program)
        # the comparison must come right after q binds X and Y,
        # before the r read fans out
        assert isinstance(ordered[1], Comparison)

    def test_probes_before_scans(self, program):
        """After the delta binds Y, the r literal (probe on Y) should
        beat the q literal (full scan)."""
        body = [
            PredLiteral("q", (W, Z)),
            PredLiteral("r", (Y, Z)),
            PredLiteral("q", (X, Y), delta="+"),
        ]
        ordered = order_body(body, program)
        assert ordered[0].delta == "+"
        assert ordered[1].pred == "r"  # Y bound: probe
        assert ordered[2].pred == "q"  # scan last

    def test_base_preferred_over_derived_on_ties(self, program):
        body = [PredLiteral("d", (X, Y)), PredLiteral("q", (X, Y))]
        ordered = order_body(body, program)
        assert ordered[0].pred == "q"

    def test_negation_waits_for_bindings(self, program):
        body = [
            PredLiteral("q", (X, Y), negated=True),
            PredLiteral("r", (X, Y)),
        ]
        ordered = order_body(body, program)
        assert ordered[0].pred == "r"
        assert ordered[1].negated

    def test_foreign_waits_for_inputs(self, program):
        body = [PredLiteral("f", (Y, Z)), PredLiteral("q", (X, Y))]
        ordered = order_body(body, program)
        assert ordered[0].pred == "q"

    def test_assignment_chain(self, program):
        body = [
            Comparison("<", Z, 100),
            Assignment(Z, Arith("*", Y, 2)),
            PredLiteral("q", (X, Y)),
        ]
        ordered = order_body(body, program)
        assert [type(l).__name__ for l in ordered] == [
            "PredLiteral",
            "Assignment",
            "Comparison",
        ]

    def test_bound_vars_seed_the_order(self, program):
        body = [PredLiteral("q", (X, Y), negated=True)]
        with pytest.raises(UnsafeClauseError):
            order_body(body, program)
        ordered = order_body(body, program, bound_vars=(X, Y))
        assert ordered[0].negated

    def test_unsafe_body_rejected(self, program):
        with pytest.raises(UnsafeClauseError):
            order_body([Comparison("<", X, Y)], program)

    def test_cardinality_estimator_breaks_scan_ties(self, program):
        sizes = {"q": 10, "r": 100000}
        body = [PredLiteral("r", (Y, Z)), PredLiteral("q", (X, W))]
        ordered = order_body(body, program, cardinality=sizes.get)
        assert ordered[0].pred == "q"  # the small scan drives the join

    def test_equal_ranks_keep_first_occurrence_order(self, program):
        """Ties resolve to textual order — reordering must be a pure
        function of the body, never of iteration incidentals."""
        body = [PredLiteral("r", (X, Y)), PredLiteral("q", (X, Y))]
        ordered = order_body(body, program)
        assert [l.pred for l in ordered] == ["r", "q"]
        flipped = order_body(list(reversed(body)), program)
        assert [l.pred for l in flipped] == ["q", "r"]

    def test_delta_ties_broken_by_bound_count(self, program):
        """Two delta reads: the one probing already-bound variables
        leads (its delta rows filter hardest)."""
        body = [
            PredLiteral("q", (Z, W), delta="+"),
            PredLiteral("r", (X, Y), delta="+"),
        ]
        ordered = order_body(body, program, bound_vars=(X, Y))
        assert ordered[0].pred == "r"

    def test_foreign_with_partial_inputs_waits(self, program):
        """f's input is Y; a body binding Y only through the relation
        read must schedule the read first even though the foreign call
        has a lower cost class."""
        body = [
            PredLiteral("f", (Y, Z)),
            PredLiteral("q", (X, Y)),
            Comparison("<", X, 5),
        ]
        ordered = order_body(body, program, bound_vars=(X,))
        preds = [getattr(l, "pred", type(l).__name__) for l in ordered]
        assert preds.index("q") < preds.index("f")

    def test_order_clause_preserves_head_and_literals(self, program):
        clause = HornClause(
            PredLiteral("out", (X, Z)),
            [
                Comparison("<", X, 2),
                PredLiteral("r", (Y, Z)),
                PredLiteral("q", (X, Y)),
            ],
        )
        ordered = order_clause(clause, program)
        assert ordered.head == clause.head
        assert sorted(map(repr, ordered.body)) == sorted(map(repr, clause.body))

    def test_bound_negation_runs_before_fanout(self, program):
        """Once its variables are bound, negation is a cheap filter and
        must precede any further relation read."""
        body = [
            PredLiteral("r", (Y, Z)),
            PredLiteral("q", (X, Y), negated=True),
        ]
        ordered = order_body(body, program, bound_vars=(X, Y))
        assert ordered[0].negated
        assert ordered[1].pred == "r"


class TestOrderedEvaluation:
    def test_static_and_dynamic_agree(self, program):
        db = Database()
        db.create_relation("q", 2).bulk_insert([(1, 1), (1, 2), (2, 3)])
        db.create_relation("r", 2).bulk_insert([(1, 10), (2, 20), (3, 30)])
        clause = HornClause(
            PredLiteral("p", (X, Z)),
            [
                Comparison("<", X, 2),
                PredLiteral("r", (Y, Z)),
                PredLiteral("q", (X, Y)),
            ],
        )
        ordered = order_clause(clause, program)
        evaluator = Evaluator(program, NewStateView(db))
        dynamic = set(evaluator.solve_clause(clause))
        static = set(evaluator.solve_clause(ordered, static=True))
        assert dynamic == static == {(1, 10), (1, 20)}

    def test_network_marks_differentials_static(self, program):
        from repro.rules.network import PropagationNetwork

        program.declare_derived("cond", 2)
        program.add_clause(HornClause(
            PredLiteral("cond", (X, Z)),
            [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
        ))
        network = PropagationNetwork(program)
        network.add_condition("cond")
        for edge in network.edges():
            for differential in edge.differentials():
                assert differential.static
                # the delta read leads the ordered body
                assert differential.clause.body[0].delta is not None

    def test_network_optimization_can_be_disabled(self, program):
        from repro.rules.network import PropagationNetwork

        program.declare_derived("cond", 2)
        program.add_clause(HornClause(
            PredLiteral("cond", (X, Z)),
            [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
        ))
        network = PropagationNetwork(program, optimize=False)
        network.add_condition("cond")
        for edge in network.edges():
            for differential in edge.differentials():
                assert not differential.static
