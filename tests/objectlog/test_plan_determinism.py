"""Regression: compiled plans must be identical across processes.

Differential plans are compiled independently by every process that
builds a propagation network — the server leader, each sharded-check
worker after a fork, every replica applying the WAL.  If the compiler
ever keys a decision on set iteration order (which varies with
``PYTHONHASHSEED``), two processes disagree on register layout or
join order and every cross-process invariant (shard merge, replica
equivalence, plan-cache reuse) silently degrades.

Historically the compiler sorted free head/body variables with
``key=repr`` in one place and ``key=lambda v: v.name`` in another;
:func:`repro.objectlog.terms.ordered_variables` is now the single
canonical ordering, and this test pins it by digesting plans compiled
under different hash seeds in fresh interpreters.
"""

import json
import os
import subprocess
import sys

import pytest

SCRIPT = r"""
import json
import sys

from repro.objectlog.batch import compile_plan
from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable, ordered_variables

# enough variables that hash-ordered iteration would be visibly unstable
names = ["X", "Y", "Z", "W", "U", "V", "Alpha", "beta", "a1", "a2"]
V = {name: Variable(name) for name in names}

program = Program()
program.declare_base("e1", 2)
program.declare_base("e2", 2)
program.declare_base("e3", 2)
program.declare_base("wide", 4)

clauses = [
    # triangle: fusion group + global variable order
    HornClause(
        PredLiteral("t", (V["X"], V["Y"], V["Z"])),
        [
            PredLiteral("e1", (V["X"], V["Y"])),
            PredLiteral("e2", (V["Y"], V["Z"])),
            PredLiteral("e3", (V["X"], V["Z"])),
        ],
    ),
    # many-variable body: slot assignment order
    HornClause(
        PredLiteral("w", (V["a1"], V["a2"], V["Alpha"], V["beta"])),
        [
            PredLiteral("wide", (V["a1"], V["a2"], V["Alpha"], V["beta"])),
            PredLiteral("wide", (V["U"], V["V"], V["a1"], V["a2"])),
            PredLiteral("e1", (V["U"], V["W"])),
            Comparison("<", V["W"], 7),
        ],
    ),
    # delta-anchored differential shape
    HornClause(
        PredLiteral("d", (V["X"], V["Y"], V["Z"])),
        [
            PredLiteral("e1", (V["X"], V["Y"]), delta="+"),
            PredLiteral("e2", (V["Y"], V["Z"])),
            PredLiteral("e3", (V["X"], V["Z"])),
        ],
    ),
]

digest = []
for clause in clauses:
    for wcoj in (False, True):
        plan = compile_plan(clause, program, wcoj=wcoj)
        digest.append(
            {
                "clause": repr(plan.clause),
                "wcoj": wcoj,
                "fused": plan.fused,
                "n_slots": plan.n_slots,
                "slots": sorted(
                    (var.name, slot) for var, slot in plan.slot_of.items()
                ),
                "steps": [
                    list(getattr(step, "wcoj", ())) for step in plan.steps
                ],
            }
        )
digest.append(
    {"ordered": [v.name for v in ordered_variables(set(V.values()))]}
)
json.dump(digest, sys.stdout)
"""


def compile_digest(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
    )
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


class TestPlanDeterminism:
    def test_plans_identical_across_hash_seeds(self):
        digests = [compile_digest(seed) for seed in (0, 1, 31337)]
        assert digests[0] == digests[1] == digests[2]
        # sanity: the probe exercised both plan shapes
        assert any(entry.get("fused") for entry in digests[0])
        assert any(
            meta for entry in digests[0] for meta in entry.get("steps", [])
        )

    def test_ordered_variables_is_name_sorted(self):
        from repro.objectlog.terms import Variable, ordered_variables

        variables = {Variable(name) for name in ("b", "A", "c", "aa")}
        assert [v.name for v in ordered_variables(variables)] == [
            "A",
            "aa",
            "b",
            "c",
        ]
