"""Tests for the evaluator's bounded prober cache (LRU + counters).

The cache memoizes resolved ``(pred, columns) -> prober`` closures per
evaluator.  Unbounded it grows with the number of distinct probe shapes
a long-lived evaluator sees (one per relation x column combination per
differential); it now mirrors the auto-index LRU: a fixed budget,
``move_to_end`` on hit, ``popitem(last=False)`` on overflow, and
hit/miss/eviction counters for ``last_check_stats()``.

On a live (new-state) view entries additionally survive ``reset()`` —
re-resolving every check phase cost ~10% of the steady-state batch
check — revalidated on hit against the source relation's
``index_epoch``, a scan-probe outgrowing the auto-index threshold, and
the metrics on/off mode they were resolved under.
"""

from repro.algebra.oldstate import NewStateView
from repro.objectlog.evaluate import PROBER_CACHE_BUDGET, Evaluator
from repro.objectlog.program import Program
from repro.obs import metrics
from repro.storage.database import Database


def make_evaluator(n_relations=1, arity=2):
    db = Database()
    program = Program()
    for i in range(n_relations):
        name = f"rel{i}"
        program.declare_base(name, arity)
        db.create_relation(name, arity).bulk_insert([(1, 2), (3, 4)])
    return Evaluator(program, NewStateView(db))


class TestProberCache:
    def test_hit_and_miss_counters(self):
        evaluator = make_evaluator()
        with metrics.collecting() as reg:
            first = evaluator.prober("rel0", (0,))
            again = evaluator.prober("rel0", (0,))
            other = evaluator.prober("rel0", (1,))
        assert first is again
        assert other is not first
        counters = reg.counters()
        assert counters["evaluate.prober_cache.hits"] == 1
        assert counters["evaluate.prober_cache.misses"] == 2

    def test_probers_actually_probe(self):
        evaluator = make_evaluator()
        probe = evaluator.prober("rel0", (0,))
        assert set(probe((1,))) == {(1, 2)}

    def test_budget_bound_and_lru_eviction(self):
        evaluator = make_evaluator(n_relations=PROBER_CACHE_BUDGET + 5)
        with metrics.collecting() as reg:
            for i in range(PROBER_CACHE_BUDGET + 5):
                evaluator.prober(f"rel{i}", (0,))
        assert len(evaluator.prober_cache) == PROBER_CACHE_BUDGET
        assert reg.counters()["evaluate.prober_cache.evictions"] == 5
        # the oldest entries fell off the front
        assert ("rel0", (0,)) not in evaluator.prober_cache
        assert (
            f"rel{PROBER_CACHE_BUDGET + 4}",
            (0,),
        ) in evaluator.prober_cache

    def test_hit_refreshes_lru_position(self):
        evaluator = make_evaluator(n_relations=PROBER_CACHE_BUDGET + 1)
        for i in range(PROBER_CACHE_BUDGET):
            evaluator.prober(f"rel{i}", (0,))
        evaluator.prober("rel0", (0,))  # hit: back of the queue
        evaluator.prober(f"rel{PROBER_CACHE_BUDGET}", (0,))  # overflow
        assert ("rel0", (0,)) in evaluator.prober_cache
        assert ("rel1", (0,)) not in evaluator.prober_cache

    def test_reset_keeps_live_view_probers(self):
        """New-state probers read live, incrementally maintained
        structures — reset() (one call per check phase) must not throw
        them away."""
        evaluator = make_evaluator()
        probe = evaluator.prober("rel0", (0,))
        evaluator.reset()
        assert evaluator.prober_cache
        assert evaluator.prober("rel0", (0,)) is probe
        # a probe resolved with metrics off reads buckets directly; a
        # metered phase must re-resolve through HashIndex.probe so
        # probe accounting stays exact
        with metrics.collecting() as reg:
            evaluator.prober("rel0", (0,))
        assert reg.counters()["evaluate.prober_cache.misses"] == 1

    def test_reset_clears_snapshot_view_probers(self):
        """Old-state probers close over a per-transaction rollback
        reconstruction and must die with it."""
        from repro.algebra.delta import DeltaSet
        from repro.algebra.oldstate import OldStateView

        db = Database()
        program = Program()
        program.declare_base("rel0", 2)
        db.create_relation("rel0", 2).bulk_insert([(1, 2)])
        view = OldStateView(db, {"rel0": DeltaSet(plus=[(1, 2)])})
        evaluator = Evaluator(program, view)
        evaluator.prober("rel0", (0,))
        assert evaluator.prober_cache
        evaluator.reset()
        assert not evaluator.prober_cache

    def test_untouched_relation_old_probers_survive_reset(self):
        """An old-state prober for a relation the rollback delta does
        not touch reads the live relation (the old state IS the new
        state there) — the monitoring steady state, where re-resolving
        4 probers per transaction was ~7% of the batch check phase."""
        from repro.algebra.delta import DeltaSet
        from repro.algebra.oldstate import OldStateView

        db = Database()
        program = Program()
        for name in ("touched", "untouched"):
            program.declare_base(name, 2)
            relation = db.create_relation(name, 2)
            relation.bulk_insert([(k, k + 1) for k in range(20)])
            relation.create_index((0,))
        view = OldStateView(db, {"touched": DeltaSet(plus=[(0, 1)])})
        evaluator = Evaluator(program, view)
        stable = evaluator.prober("untouched", (0,))
        evaluator.prober("touched", (0,))
        view.reset({"touched": DeltaSet(plus=[(2, 3)])})
        evaluator.reset()
        # the untouched relation's entry survived; the touched one died
        assert ("untouched", (0,)) in evaluator.prober_cache
        assert ("touched", (0,)) not in evaluator.prober_cache
        assert evaluator.prober("untouched", (0,)) is stable
        assert set(stable((3,))) == {(3, 4)}

    def test_old_prober_invalidated_when_relation_becomes_touched(self):
        """The surviving entry revalidates per hit: once a transaction
        DOES change the relation, the cached live probe would read the
        new state, so the hit must miss and re-resolve through the
        rollback reconstruction."""
        from repro.algebra.delta import DeltaSet
        from repro.algebra.oldstate import OldStateView

        db = Database()
        program = Program()
        program.declare_base("rel0", 2)
        relation = db.create_relation("rel0", 2)
        relation.bulk_insert([(k, k + 1) for k in range(20)])
        relation.create_index((0,))
        view = OldStateView(db, {})
        evaluator = Evaluator(program, view)
        live = evaluator.prober("rel0", (0,))
        view.reset({"rel0": DeltaSet(plus=[(5, 99)])})
        evaluator.reset()
        relation.insert((5, 99))
        rollback = evaluator.prober("rel0", (0,))
        assert rollback is not live
        # the old state never contained the inserted row
        assert set(rollback((5,))) == {(5, 6)}
        assert set(live((5,))) == {(5, 6), (5, 99)}

    def test_index_epoch_change_invalidates_entry(self):
        """Index/trie create or evict bumps the relation's
        index_epoch; a cached probe resolved before the change may
        close over an evicted index's orphaned buckets."""
        evaluator = make_evaluator()
        evaluator.prober("rel0", (0,))
        evaluator.view.prober_source("rel0").create_index((1,))
        with metrics.collecting() as reg:
            evaluator.prober("rel0", (0,))
        assert reg.counters()["evaluate.prober_cache.misses"] == 1
        assert "evaluate.prober_cache.hits" not in reg.counters()

    def test_scan_probe_rechecks_after_growth(self):
        """A probe resolved while the relation was small is a scan;
        once the relation outgrows the auto-index threshold a hit must
        re-resolve so the view can build the index."""
        evaluator = make_evaluator()
        relation = evaluator.view.prober_source("rel0")
        evaluator.prober("rel0", (0,))  # 2 rows: scan fallback
        relation.bulk_insert([(k, k) for k in range(10, 30)])
        probe = evaluator.prober("rel0", (0,))  # re-resolves, builds index
        assert relation.index_on((0,)) is not None
        assert set(probe((1,))) == {(1, 2)}

    def test_zero_overhead_when_metrics_off(self):
        evaluator = make_evaluator()
        assert metrics.ACTIVE is None
        evaluator.prober("rel0", (0,))
        evaluator.prober("rel0", (0,))
        assert len(evaluator.prober_cache) == 1
