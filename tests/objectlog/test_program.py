"""Tests for the predicate catalog and dependency analysis."""

import pytest

from repro.errors import (
    DuplicateRelationError,
    ObjectLogError,
    RecursionNotSupportedError,
    UnknownPredicateError,
)
from repro.objectlog.clause import HornClause
from repro.objectlog.literals import PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def clause(head, *body):
    return HornClause(head, list(body))


@pytest.fixture
def program():
    p = Program()
    p.declare_base("q", 2)
    p.declare_base("r", 2)
    return p


class TestDeclaration:
    def test_kinds(self, program):
        program.declare_derived("p", 2)
        program.declare_foreign("f", 2, 1, lambda x: [(x,)])
        assert program.predicate("q").kind == "base"
        assert program.predicate("p").kind == "derived"
        assert program.predicate("f").kind == "foreign"

    def test_duplicate_rejected(self, program):
        with pytest.raises(DuplicateRelationError):
            program.declare_base("q", 2)

    def test_unknown_rejected(self, program):
        with pytest.raises(UnknownPredicateError):
            program.predicate("nope")

    def test_foreign_n_in_validated(self, program):
        with pytest.raises(ObjectLogError):
            program.declare_foreign("g", 2, 3, lambda: None)

    def test_clause_head_must_match(self, program):
        program.declare_derived("p", 2)
        with pytest.raises(ObjectLogError):
            program.add_clause(clause(PredLiteral("other", (X, Y)),
                                      PredLiteral("q", (X, Y))))
        with pytest.raises(ObjectLogError):
            program.add_clause(clause(PredLiteral("p", (X,)),
                                      PredLiteral("q", (X, X))))

    def test_clause_on_base_rejected(self, program):
        with pytest.raises(ObjectLogError):
            program.add_clause(clause(PredLiteral("q", (X, Y)),
                                      PredLiteral("r", (X, Y))))

    def test_drop(self, program):
        program.declare_derived("p", 1)
        program.drop("p")
        assert not program.has("p")
        with pytest.raises(UnknownPredicateError):
            program.drop("p")


class TestDependencies:
    def _chain(self, program):
        """p <- mid & r;  mid <- q"""
        program.declare_derived("mid", 2)
        program.add_clause(clause(PredLiteral("mid", (X, Y)),
                                  PredLiteral("q", (X, Y))))
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Z)),
                                  PredLiteral("mid", (X, Y)),
                                  PredLiteral("r", (Y, Z))))

    def test_direct_influents(self, program):
        self._chain(program)
        assert program.direct_influents("p") == {"mid", "r"}
        assert program.direct_influents("mid") == {"q"}
        assert program.direct_influents("q") == frozenset()

    def test_influent_closure_is_transitive(self, program):
        self._chain(program)
        assert program.influent_closure("p") == {"mid", "r", "q"}

    def test_base_influents(self, program):
        self._chain(program)
        assert program.base_influents("p") == {"q", "r"}

    def test_closure_through_negation(self, program):
        program.declare_derived("aux", 1)
        program.add_clause(clause(PredLiteral("aux", (X,)),
                                  PredLiteral("q", (X, X))))
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Y)),
                                  PredLiteral("r", (X, Y)),
                                  PredLiteral("aux", (X,), negated=True)))
        assert program.base_influents("p") == {"q", "r"}
        assert program.negated_references("p") == {"aux"}

    def test_diamond_dependency_fully_explored(self, program):
        """a -> b, a -> c, b -> q, c -> r: both bases must be found."""
        program.declare_derived("b", 2)
        program.add_clause(clause(PredLiteral("b", (X, Y)), PredLiteral("q", (X, Y))))
        program.declare_derived("c", 2)
        program.add_clause(clause(PredLiteral("c", (X, Y)), PredLiteral("r", (X, Y))))
        program.declare_derived("a", 2)
        program.add_clause(clause(PredLiteral("a", (X, Y)),
                                  PredLiteral("b", (X, Y)),
                                  PredLiteral("c", (X, Y))))
        assert program.base_influents("a") == {"q", "r"}

    def test_levels(self, program):
        self._chain(program)
        assert program.level_of("q") == 0
        assert program.level_of("mid") == 1
        assert program.level_of("p") == 2

    def test_recursion_detected_in_closure(self, program):
        program.declare_derived("p", 2)
        program.add_clause(clause(PredLiteral("p", (X, Z)),
                                  PredLiteral("q", (X, Y)),
                                  PredLiteral("p", (Y, Z))))
        with pytest.raises(RecursionNotSupportedError):
            program.influent_closure("p")
        with pytest.raises(RecursionNotSupportedError):
            program.level_of("p")

    def test_mutual_recursion_detected(self, program):
        program.declare_derived("a", 1)
        program.declare_derived("b", 1)
        program.add_clause(clause(PredLiteral("a", (X,)), PredLiteral("b", (X,))))
        program.add_clause(clause(PredLiteral("b", (X,)), PredLiteral("a", (X,))))
        with pytest.raises(RecursionNotSupportedError):
            program.influent_closure("a")
