"""Property: static ordering never changes query results.

Hypothesis generates random conjunctive bodies (relation reads, delta
reads, comparisons, negation) over random data and asserts that the
statically ordered body evaluates to exactly the same solutions as the
dynamically scheduled one — the optimizer is a pure performance
transformation.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView
from repro.errors import UnsafeClauseError
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.optimize import order_body
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.storage.database import Database

VARS = [Variable(name) for name in "ABCD"]

relation_contents = st.frozensets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8
)


@st.composite
def bodies(draw):
    """A random body over q/2, r/2, plus builtins and delta reads."""
    literals = []
    n_reads = draw(st.integers(1, 3))
    for _ in range(n_reads):
        pred = draw(st.sampled_from(["q", "r"]))
        args = tuple(draw(st.sampled_from(VARS)) for _ in range(2))
        delta = draw(st.sampled_from([None, None, None, "+", "-"]))
        literals.append(PredLiteral(pred, args, delta=delta))
    bound_vars = set()
    for literal in literals:
        bound_vars |= literal.variables()
    if bound_vars and draw(st.booleans()):
        left = draw(st.sampled_from(sorted(bound_vars, key=repr)))
        right = draw(st.one_of(
            st.integers(0, 3),
            st.sampled_from(sorted(bound_vars, key=repr)),
        ))
        op = draw(st.sampled_from(["<", "<=", "=", "!="]))
        literals.append(Comparison(op, left, right))
    if bound_vars and draw(st.booleans()):
        args = tuple(
            draw(st.sampled_from(sorted(bound_vars, key=repr)))
            for _ in range(2)
        )
        literals.append(PredLiteral(draw(st.sampled_from(["q", "r"])), args,
                                    negated=True))
    return draw(st.permutations(literals))


class TestOptimizerProperty:
    @settings(max_examples=80, deadline=None)
    @given(
        body=bodies(),
        q_rows=relation_contents,
        r_rows=relation_contents,
        delta_plus=relation_contents,
        delta_minus=relation_contents,
    )
    def test_static_order_preserves_solutions(
        self, body, q_rows, r_rows, delta_plus, delta_minus
    ):
        db = Database()
        db.create_relation("q", 2).bulk_insert(q_rows)
        db.create_relation("r", 2).bulk_insert(r_rows)
        program = Program()
        program.declare_base("q", 2)
        program.declare_base("r", 2)
        deltas = {
            "q": DeltaSet(delta_plus - delta_minus, delta_minus - delta_plus),
            "r": DeltaSet(delta_plus - delta_minus, delta_minus - delta_plus),
        }
        try:
            ordered = order_body(body, program)
        except UnsafeClauseError:
            assume(False)  # no safe order: nothing to compare
            return
        evaluator = Evaluator(program, NewStateView(db), deltas=deltas)

        def solutions(literals, static):
            out = set()
            for env in evaluator.solve_body(literals, static=static):
                out.add(tuple(sorted((v.name, env[v]) for v in env)))
            return out

        try:
            dynamic = solutions(body, static=False)
        except UnsafeClauseError:
            assume(False)
            return
        static = solutions(ordered, static=True)
        assert static == dynamic

    @settings(max_examples=80, deadline=None)
    @given(
        body=bodies(),
        q_rows=relation_contents,
        r_rows=relation_contents,
        delta_plus=relation_contents,
        delta_minus=relation_contents,
    )
    def test_compiled_plans_preserve_solutions(
        self, body, q_rows, r_rows, delta_plus, delta_minus
    ):
        """The same property one layer up: the compiled plan — pairwise
        chain AND (where the body fuses) the WCOJ kernel — computes the
        dynamic scheduler's solutions exactly."""
        from repro.objectlog.batch import compile_plan
        from repro.objectlog.clause import HornClause
        from repro.objectlog.terms import ordered_variables

        db = Database()
        db.create_relation("q", 2).bulk_insert(q_rows)
        db.create_relation("r", 2).bulk_insert(r_rows)
        program = Program()
        program.declare_base("q", 2)
        program.declare_base("r", 2)
        deltas = {
            "q": DeltaSet(delta_plus - delta_minus, delta_minus - delta_plus),
            "r": DeltaSet(delta_plus - delta_minus, delta_minus - delta_plus),
        }
        try:
            ordered = order_body(body, program)
        except UnsafeClauseError:
            assume(False)
            return
        head_vars = tuple(
            ordered_variables(set().union(*(l.variables() for l in body)))
        )
        clause = HornClause(PredLiteral("out", head_vars), ordered)
        evaluator = Evaluator(program, NewStateView(db), deltas=deltas)
        try:
            expected = {
                tuple(env[v] for v in head_vars)
                for env in evaluator.solve_body(body, static=False)
            }
        except UnsafeClauseError:
            assume(False)
            return
        for wcoj in (False, True):
            plan = compile_plan(clause, program, wcoj=wcoj)
            assert set(plan.rows(evaluator)) == expected, f"wcoj={wcoj}"
