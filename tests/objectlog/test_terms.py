"""Tests for ObjectLog terms, environments, and arithmetic expressions."""

import pytest

from repro.errors import ObjectLogError
from repro.objectlog.terms import (
    Arith,
    Variable,
    bind_row,
    eval_expr,
    expr_variables,
    fresh_variable,
    is_bound,
    is_variable,
    rename_expr,
    resolve,
)

X = Variable("X")
Y = Variable("Y")


class TestVariable:
    def test_identity_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert hash(Variable("X")) == hash(Variable("X"))

    def test_fresh_variables_are_distinct(self):
        assert fresh_variable() != fresh_variable()

    def test_is_variable(self):
        assert is_variable(X)
        assert not is_variable(3)
        assert not is_variable("X")

    def test_resolve_and_is_bound(self):
        env = {X: 7}
        assert resolve(X, env) == 7
        assert resolve(Y, env) == Y
        assert resolve(42, env) == 42
        assert is_bound(X, env)
        assert not is_bound(Y, env)
        assert is_bound("constant", env)


class TestBindRow:
    def test_binds_new_variables(self):
        env = bind_row((X, Y), (1, 2), {})
        assert env == {X: 1, Y: 2}

    def test_respects_existing_bindings(self):
        assert bind_row((X,), (1,), {X: 1}) == {X: 1}
        assert bind_row((X,), (2,), {X: 1}) is None

    def test_constants_must_match(self):
        assert bind_row((1, Y), (1, 2), {}) == {Y: 2}
        assert bind_row((1, Y), (9, 2), {}) is None

    def test_repeated_variable_join_semantics(self):
        assert bind_row((X, X), (1, 1), {}) == {X: 1}
        assert bind_row((X, X), (1, 2), {}) is None

    def test_original_env_not_mutated(self):
        env = {X: 1}
        bind_row((X, Y), (1, 2), env)
        assert env == {X: 1}


class TestArith:
    def test_evaluate(self):
        expr = Arith("+", Arith("*", X, 3), Y)
        assert expr.evaluate({X: 2, Y: 4}) == 10

    def test_all_operators(self):
        env = {X: 7, Y: 2}
        assert Arith("-", X, Y).evaluate(env) == 5
        assert Arith("/", X, Y).evaluate(env) == 3.5
        assert Arith("//", X, Y).evaluate(env) == 3
        assert Arith("%", X, Y).evaluate(env) == 1

    def test_unknown_operator_rejected(self):
        with pytest.raises(ObjectLogError):
            Arith("**", X, Y)

    def test_variables(self):
        expr = Arith("+", Arith("*", X, 3), Y)
        assert expr.variables() == {X, Y}
        assert expr_variables(5) == frozenset()
        assert expr_variables(X) == {X}

    def test_eval_expr_unbound_raises(self):
        with pytest.raises(ObjectLogError):
            eval_expr(X, {})

    def test_eval_expr_constants_and_vars(self):
        assert eval_expr(5, {}) == 5
        assert eval_expr(X, {X: 3}) == 3

    def test_rename(self):
        renamed = rename_expr(Arith("+", X, Y), {X: Variable("Z")})
        assert renamed.variables() == {Variable("Z"), Y}

    def test_equality_and_hash(self):
        assert Arith("+", X, 1) == Arith("+", X, 1)
        assert Arith("+", X, 1) != Arith("-", X, 1)
        assert hash(Arith("+", X, 1)) == hash(Arith("+", X, 1))
