"""Accounting consistency: metrics/trace vs. an independent recount.

The observability layer reports edges fired, per-edge tuple counts, and
probe/scan splits.  These tests verify that three *independent* sources
agree on the paper's ``monitor_items`` running example:

1. the metrics counters (``propagation.edges_fired`` etc.),
2. the span trace (``edge:<differential>`` attributes),
3. :class:`repro.rules.propagation.PropagationTrace` — the engine's own
   explainability record — and a naive delta-union recount of it.

If the instruments drifted from what the engine actually does, the
whole bench trajectory would silently lie; this suite is what makes the
numbers trustworthy.
"""

import pytest

from repro.algebra.delta import DeltaSet, MutableDelta
from repro.bench.workload import build_inventory
from repro.obs import metrics


def observed_workload(n_items=12, **options):
    workload = build_inventory(
        n_items, mode="incremental", explain=True, observe=True, **options
    )
    workload.activate()
    return workload


def executed(report):
    """All DifferentialExecutions of a check-phase report, in order."""
    out = []
    for iteration in report.iterations:
        if iteration.trace is not None:
            out.extend(iteration.trace.executions)
    return out


class TestEdgeAccounting:
    def run_one_transaction(self, below):
        workload = observed_workload()
        with metrics.collecting() as registry:
            workload.touch_one_item(3, below=below)
        return workload, registry

    @pytest.mark.parametrize("below", [False, True])
    def test_edges_fired_matches_propagation_trace(self, below):
        workload, registry = self.run_one_transaction(below)
        report = workload.amos.rules.last_report
        labels = [e.label for e in executed(report)]
        stats = workload.amos.last_check_stats()
        assert stats["derived"]["edges_fired"] == len(labels)
        assert registry.value("propagation.edges_fired") == len(labels)

    @pytest.mark.parametrize("below", [False, True])
    def test_span_tuple_counts_match_propagation_trace(self, below):
        workload, _ = self.run_one_transaction(below)
        report = workload.amos.rules.last_report
        trace_out = {}
        trace_in = {}
        for execution in executed(report):
            trace_out[execution.label] = trace_out.get(execution.label, 0) + len(
                execution.produced
            )
            trace_in[execution.label] = trace_in.get(execution.label, 0) + (
                execution.input_size
            )
        root = workload.amos.last_check_trace()
        span_out = {}
        span_in = {}
        for span in root.walk():
            if not span.name.startswith("edge:"):
                continue
            label = span.name[len("edge:"):]
            span_out[label] = span_out.get(label, 0) + span.attributes["out"]
            span_in[label] = span_in.get(label, 0) + span.attributes["in"]
        assert span_out == trace_out
        assert span_in == trace_in

    @pytest.mark.parametrize("below", [False, True])
    def test_naive_recount_of_condition_delta(self, below):
        """Folding the executed differentials' outputs with delta-union
        must reproduce exactly the condition delta the engine reported."""
        workload, _ = self.run_one_transaction(below)
        report = workload.amos.rules.last_report
        condition = "cnd_monitor_items"
        for iteration in report.iterations:
            if iteration.trace is None:
                continue
            recount = MutableDelta()
            for execution in iteration.trace.executions:
                if execution.target != condition:
                    continue
                if execution.output_sign == "+":
                    recount.merge(DeltaSet(execution.produced, ()))
                else:
                    recount.merge(DeltaSet((), execution.produced))
            reported = iteration.condition_deltas.get(condition, DeltaSet())
            assert recount.freeze() == reported

    def test_tuple_counters_match_trace_totals(self):
        workload, registry = self.run_one_transaction(below=True)
        report = workload.amos.rules.last_report
        executions = executed(report)
        assert registry.value("propagation.tuples_out") == sum(
            len(e.produced) for e in executions
        )
        assert registry.value("propagation.tuples_in") == sum(
            e.input_size for e in executions
        )
        assert registry.value("propagation.tuples_guarded") == sum(
            len(e.guarded_away) for e in executions
        )


class TestProbeScanAccounting:
    def test_incremental_check_uses_only_index_probes(self):
        """The Fig. 6 asymmetry, as accounting: the incremental monitor
        answers a one-item update entirely through index probes."""
        workload = observed_workload()
        with metrics.collecting():
            workload.touch_one_item(1, below=True)
        derived = workload.amos.last_check_stats()["derived"]
        assert derived["index_probes"] > 0
        assert derived["scans"] == 0
        assert derived["probe_ratio"] == 1.0

    def test_naive_check_scans(self):
        """The baseline recomputes the whole condition: snapshots/scans
        appear, and the probe ratio drops below 1."""
        workload = build_inventory(12, mode="naive", observe=True)
        workload.activate()
        with metrics.collecting():
            workload.touch_one_item(1, below=True)
        derived = workload.amos.last_check_stats()["derived"]
        assert derived["scans"] > 0
        assert derived["probe_ratio"] is None or derived["probe_ratio"] < 1.0

    def test_update_counter_update_nets_to_no_propagation(self):
        """The paper's section-4.1 example: an update and its counter-
        update cancel in the accumulator, so no differential executes."""
        workload = observed_workload()
        amos = workload.amos
        item = workload.items[0]
        original = amos.value("quantity", item)
        with metrics.collecting() as registry:
            with amos.transaction():
                amos.set_value("quantity", (item,), 1)
                amos.set_value("quantity", (item,), original)
        assert registry.value("delta.cancellations") == 2
        assert registry.value("propagation.edges_fired") == 0
        assert registry.value("delta.net_rows") == 0


class TestCheckStatsSurface:
    def test_none_before_first_observed_commit(self):
        workload = build_inventory(3, mode="incremental", observe=True)
        assert workload.amos.last_check_stats() is None

    def test_not_collected_without_observe(self):
        workload = build_inventory(3, mode="incremental")
        workload.activate()
        workload.touch_one_item(0)
        assert workload.amos.last_check_stats() is None

    def test_stats_refresh_per_commit(self):
        workload = observed_workload(6)
        workload.touch_one_item(0)
        first = workload.amos.last_check_stats()
        workload.touch_one_item(0, below=True)
        second = workload.amos.last_check_stats()
        assert first is not second
        assert second["derived"]["rules_fired"] == 1

    def test_trace_is_renderable(self):
        from repro.obs import render_trace

        workload = observed_workload(6)
        workload.touch_one_item(2, below=True)
        text = render_trace(workload.amos.last_check_trace())
        assert "check_phase" in text
        assert "propagate" in text
        assert "edge:Δcnd_monitor_items/Δ+quantity" in text
        assert "action:monitor_items" in text
