"""Tests for repro.obs.export: run export and BENCH_* artifacts."""

import json
import os

import pytest

from repro.obs.export import (
    bench_artifact_dir,
    export_run,
    registry_to_dict,
    trace_to_dict,
    write_bench_artifact,
)
from repro.obs.metrics import Registry
from repro.obs.tracing import Tracer


class TestSerializers:
    def test_registry_to_dict_none(self):
        assert registry_to_dict(None) is None

    def test_trace_to_dict_accepts_tracer_span_and_none(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert trace_to_dict(None) is None
        assert trace_to_dict(tracer)[0]["name"] == "root"
        assert trace_to_dict(tracer.roots[0])["name"] == "root"

    def test_trace_to_dict_rejects_other_types(self):
        with pytest.raises(TypeError):
            trace_to_dict(42)


class TestExportRun:
    def test_writes_metrics_trace_and_meta(self, tmp_path):
        registry = Registry()
        registry.counter("edges").inc(3)
        tracer = Tracer()
        with tracer.span("check_phase"):
            pass
        path = export_run(
            str(tmp_path / "run.json"),
            registry=registry,
            trace=tracer,
            meta={"workload": "fig6"},
        )
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["meta"] == {"workload": "fig6"}
        assert payload["metrics"]["counters"] == {"edges": 3}
        assert payload["trace"][0]["name"] == "check_phase"

    def test_handles_missing_parts(self, tmp_path):
        path = export_run(str(tmp_path / "empty.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["metrics"] is None
        assert payload["trace"] is None


class TestBenchArtifacts:
    def test_write_bench_artifact_names_the_file(self, tmp_path):
        path = write_bench_artifact(
            "fig6", {"rows": [1, 2]}, directory=str(tmp_path)
        )
        assert os.path.basename(path) == "BENCH_fig6.json"
        with open(path) as handle:
            assert json.load(handle) == {"rows": [1, 2]}

    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert bench_artifact_dir() == str(tmp_path)
        path = write_bench_artifact("smoke", {"ok": True})
        assert path == str(tmp_path / "BENCH_smoke.json")

    def test_defaults_to_repository_root(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        repo = tmp_path / "repo"
        nested = repo / "benchmarks"
        nested.mkdir(parents=True)
        (repo / "pyproject.toml").write_text("")
        monkeypatch.chdir(nested)
        assert bench_artifact_dir() == str(repo)

    def test_falls_back_to_cwd_without_marker(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert bench_artifact_dir() == str(tmp_path)
