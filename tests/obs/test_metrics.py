"""Unit tests for repro.obs.metrics: instruments, registry, tee, scopes."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import Counter, Gauge, Histogram, Registry, Tee, collecting


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_repr_names_the_counter(self):
        assert "c" in repr(Counter("c"))


class TestGauge:
    def test_set_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 10

    def test_set_max_only_keeps_maxima(self):
        gauge = Gauge("g")
        gauge.set_max(5)
        gauge.set_max(2)
        gauge.set_max(9)
        assert gauge.max_value == 9


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (1, 2, 3, 10):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 16
        assert histogram.min == 1
        assert histogram.max == 10
        assert histogram.mean == pytest.approx(4.0)

    def test_power_of_two_buckets(self):
        histogram = Histogram("h")
        for value in (0, 1, 2, 3, 1000):
            histogram.observe(value)
        # 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 1000 -> 10
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 10: 1}

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_as_dict_is_json_shaped(self):
        histogram = Histogram("h")
        histogram.observe(4)
        data = histogram.as_dict()
        assert data["count"] == 1
        assert data["buckets"] == {"3": 1}


class TestRegistry:
    def test_instruments_are_created_once(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_value_reads_counters_with_default(self):
        registry = Registry()
        registry.counter("hits").inc(3)
        assert registry.value("hits") == 3
        assert registry.value("missing") == 0
        assert registry.value("missing", default=-1) == -1

    def test_as_dict_round_trips_all_kinds(self):
        registry = Registry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1)
        data = registry.as_dict()
        assert data["counters"] == {"c": 2}
        assert data["gauges"]["g"] == {"value": 7, "max": 7}
        assert data["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = Registry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestTee:
    def test_writes_reach_every_registry(self):
        first, second = Registry(), Registry()
        tee = Tee(first, second)
        tee.counter("c").inc(2)
        tee.gauge("g").set(5)
        tee.gauge("g").set_max(11)
        tee.histogram("h").observe(3)
        for registry in (first, second):
            assert registry.value("c") == 2
            assert registry.gauge("g").max_value == 11
            assert registry.histogram("h").count == 1

    def test_tee_instruments_are_cached(self):
        tee = Tee(Registry())
        assert tee.counter("c") is tee.counter("c")


class TestCollectingScope:
    def test_installs_and_restores(self):
        assert metrics.ACTIVE is None
        with collecting() as registry:
            assert metrics.ACTIVE is registry
            metrics.ACTIVE.counter("x").inc()
        assert metrics.ACTIVE is None
        assert registry.value("x") == 1

    def test_nested_scopes_tee_to_all_levels(self):
        with collecting() as outer:
            with collecting() as inner:
                metrics.ACTIVE.counter("x").inc(3)
            # after the inner scope, writes go only to the outer registry
            metrics.ACTIVE.counter("x").inc(1)
        assert inner.value("x") == 3
        assert outer.value("x") == 4

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert metrics.ACTIVE is None

    def test_accepts_an_existing_registry(self):
        mine = Registry()
        with collecting(mine) as registry:
            assert registry is mine
            metrics.ACTIVE.counter("x").inc()
        assert mine.value("x") == 1

    def test_install_uninstall(self):
        registry = Registry()
        metrics.install(registry)
        assert metrics.active() is registry
        metrics.uninstall()
        assert metrics.active() is None
