"""Property tests: metric invariants and side-effect freedom.

Two families of properties, both over randomly generated transaction
sequences against the ``monitor_items`` inventory:

* **Accounting invariants** — the raw delta traffic reported by the
  counters decomposes exactly into net rows, discarded rows, and
  cancelled insert/delete pairs.  In particular the raw traffic always
  dominates the net change (the paper's update/counter-update netting
  can only shrink deltas, never grow them).

* **Side-effect freedom** — running the same transactions with the
  observability layer fully enabled (registry + tracer installed,
  ``observe=True``) produces byte-identical engine results to running
  them with everything disabled.  Monitoring must never change what is
  monitored.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workload import build_inventory
from repro.obs import metrics, tracing

N_ITEMS = 6
THRESHOLD = 140  # constant by construction in build_inventory

# one operation: (item index, new quantity); quantities straddle the
# threshold so rules genuinely fire and un-fire across the sequence
operation = st.tuples(
    st.integers(min_value=0, max_value=N_ITEMS - 1),
    st.integers(min_value=THRESHOLD - 30, max_value=THRESHOLD + 30),
)

# one transaction: a few operations plus a commit/rollback decision
transaction = st.tuples(
    st.lists(operation, min_size=1, max_size=4),
    st.booleans(),  # True -> commit, False -> rollback
)

script = st.lists(transaction, min_size=1, max_size=6)


def run_script(workload, txns):
    amos = workload.amos
    for operations, commit in txns:
        amos.begin()
        for index, quantity in operations:
            amos.set_value("quantity", (workload.items[index],), quantity)
        if commit:
            amos.commit()
        else:
            amos.rollback()


def snapshot(workload):
    """Everything the engine computed: firings and final state."""
    quantities = [
        workload.amos.value("quantity", item) for item in workload.items
    ]
    return (list(workload.orders), quantities)


class TestAccountingInvariants:
    @given(txns=script)
    @settings(max_examples=25, deadline=None)
    def test_raw_traffic_decomposes_exactly(self, txns):
        workload = build_inventory(N_ITEMS, mode="incremental", observe=True)
        workload.activate()
        with metrics.collecting() as registry:
            run_script(workload, txns)
        raw = registry.value("delta.raw_plus") + registry.value("delta.raw_minus")
        net = registry.value("delta.net_rows")
        dropped = registry.value("delta.dropped_rows")
        cancelled = registry.value("delta.cancellations")
        # every raw event either survives to the check phase (net), is
        # discarded on rollback (dropped), or annihilates with its
        # opposite — an insert AND a delete per cancellation
        assert raw == net + dropped + 2 * cancelled
        # corollary: raw delta traffic dominates the net change
        assert raw >= net
        assert cancelled == (raw - net - dropped) // 2

    @given(txns=script)
    @settings(max_examples=25, deadline=None)
    def test_propagation_consumes_exactly_the_net_rows(self, txns):
        """Seeded wave-front rows are either propagated then discarded
        (section 6: intermediate deltas are transient) — nothing leaks
        past the check phase."""
        workload = build_inventory(N_ITEMS, mode="incremental", observe=True)
        workload.activate()
        with metrics.collecting() as registry:
            run_script(workload, txns)
        # after every commit's check phase the wave front is empty again
        engine = workload.amos.rules
        network = getattr(engine.engine, "network", None)
        if network is not None:
            assert all(
                len(node.delta) == 0 for node in network.nodes.values()
            )
        # edges only fire when something actually changed
        if registry.value("delta.net_rows") == 0:
            assert registry.value("propagation.edges_fired") == 0


class TestSideEffectFreedom:
    @given(txns=script)
    @settings(max_examples=25, deadline=None)
    def test_observability_never_changes_engine_results(self, txns):
        plain = build_inventory(N_ITEMS, mode="incremental")
        plain.activate()
        run_script(plain, txns)

        observed = build_inventory(N_ITEMS, mode="incremental", observe=True)
        observed.activate()
        with metrics.collecting():
            with tracing.recording():
                run_script(observed, txns)

        def comparable(workload):
            orders, quantities = snapshot(workload)
            # OIDs differ between databases; compare by item position
            index_of = {item: i for i, item in enumerate(workload.items)}
            return (
                [(index_of[item], amount) for item, amount in orders],
                quantities,
            )

        assert comparable(plain) == comparable(observed)

    @given(txns=script)
    @settings(max_examples=10, deadline=None)
    def test_collecting_scope_does_not_require_observe(self, txns):
        """A registry installed around an un-observed database still
        gathers storage-layer counters without touching results."""
        workload = build_inventory(N_ITEMS, mode="incremental")
        workload.activate()
        with metrics.collecting() as registry:
            run_script(workload, txns)
        committed = [ops for ops, commit in txns if commit]
        if committed:
            assert registry.value("storage.events") > 0
