"""Accounting consistency for the persistent shard worker pool.

The pool reports through two channels that must not drift:

1. ``engine.pool_stats`` — engine-lifetime totals (forks, respawns,
   resyncs, sync traffic, reuse hits, discards, auto routing), the
   source of truth that survives registry swaps;
2. the metrics registry — ``shard.pool.*`` / ``shard.auto.*`` counters
   mirrored whenever a registry is active, surfaced per commit by
   ``last_check_stats()`` and serialized by ``repro.obs.export``.

These tests pin the identities between them and the structural
invariants (forks = shards + respawns while one pool lives, one resync
per reused phase, one auto decision per phase) on the inventory
workload.  ``policy="fanout"`` pins the pooled path except where the
auto policy itself is under test.
"""

import gc

import pytest

from repro.bench.workload import build_inventory
from repro.obs import metrics
from repro.obs.export import export_run, pool_to_dict

POOL_KEYS = (
    "forks", "respawns", "resyncs", "sync_bytes",
    "reuse_hits", "discards",
)
AUTO_KEYS = ("auto_serial", "auto_fanout")


@pytest.fixture(autouse=True)
def _reap_pools():
    yield
    gc.collect()


def pooled_workload(n_items=8, shards=2, policy="fanout", **shard_options):
    workload = build_inventory(
        n_items, mode="incremental", explain=True, observe=True,
        shards=shards,
        shard_options={"policy": policy, **shard_options},
    )
    workload.activate()
    return workload


class TestRegistryMirrorsPoolStats:
    def test_counters_match_engine_lifetime_stats(self):
        workload = pooled_workload()
        engine = workload.amos.rules.engine
        with metrics.collecting() as registry:
            workload.touch_one_item(0, below=True)   # fork
            workload.touch_one_item(1, below=True)   # reuse + sync
            workload.touch_one_item(2, below=True)   # reuse + sync
        counters = registry.counters()
        # one registry spanned the engine's whole life, so the mirror
        # must agree exactly with the source of truth
        for key in POOL_KEYS:
            assert counters.get(f"shard.pool.{key}", 0) == (
                engine.pool_stats[key]
            ), key
        for key in AUTO_KEYS:
            assert counters.get(f"shard.auto.{key[5:]}", 0) == (
                engine.pool_stats[key]
            ), key
        engine.close_pool()

    def test_structural_identities(self):
        workload = pooled_workload()
        engine = workload.amos.rules.engine
        phases = 4
        for i in range(phases):
            workload.touch_one_item(i, below=True)
        stats = engine.pool_stats
        # one pool, never discarded: every fork is either the initial
        # fleet or a respawn
        assert stats["discards"] == 0
        assert stats["forks"] == engine.shards + stats["respawns"]
        # the first phase forks, every later one reuses and syncs once
        assert stats["reuse_hits"] == phases - 1
        assert stats["resyncs"] == phases - 1
        assert stats["sync_bytes"] > 0
        assert stats["sync_ms"] > 0.0
        # fanout policy: every phase was routed, all of them fanned out
        assert stats["auto_fanout"] == phases
        assert stats["auto_serial"] == 0
        engine.close_pool()

    def test_auto_decisions_count_phases(self):
        workload = pooled_workload(policy="auto", auto_min_rows=4)
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)   # 2 Δ rows: serial
        workload.massive_change(-1)              # 16 Δ rows: fanout
        workload.touch_one_item(1, below=True)   # serial again
        stats = engine.pool_stats
        assert stats["auto_serial"] == 2
        assert stats["auto_fanout"] == 1
        assert stats["auto_serial"] + stats["auto_fanout"] == 3
        engine.close_pool()


class TestLastCheckStatsDerived:
    def test_derived_keys_surface_pool_activity(self):
        workload = pooled_workload()
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        derived = workload.amos.last_check_stats()["derived"]
        # the forking commit: workers forked, nothing reused yet
        assert derived["shard_pool_forks"] == engine.shards
        assert derived["shard_pool_resyncs"] == 0
        assert derived["shard_auto_fanout"] == 1

        workload.touch_one_item(1, below=True)
        derived = workload.amos.last_check_stats()["derived"]
        # the reusing commit: no forks in THIS window, one sync
        assert derived["shard_pool_forks"] == 0
        assert derived["shard_pool_resyncs"] == 1
        assert derived["shard_pool_reuse_hits"] == 1
        assert derived["shard_pool_sync_bytes"] > 0
        engine.close_pool()

    def test_serial_engine_reports_zeroes(self):
        workload = build_inventory(
            4, mode="incremental", explain=True, observe=True, shards=1
        )
        workload.activate()
        workload.touch_one_item(0, below=True)
        derived = workload.amos.last_check_stats()["derived"]
        assert derived["shard_pool_forks"] == 0
        assert derived["shard_pool_resyncs"] == 0
        assert derived["shard_auto_fanout"] == 0


class TestExport:
    def test_export_run_embeds_pool_stats(self, tmp_path):
        import json

        workload = pooled_workload()
        engine = workload.amos.rules.engine
        with metrics.collecting() as registry:
            workload.touch_one_item(0, below=True)
            workload.touch_one_item(1, below=True)
        path = export_run(
            str(tmp_path / "run.json"), registry=registry, pool=engine
        )
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["pool"] == pool_to_dict(engine.pool_stats)
        assert payload["pool"]["forks"] == 2
        assert payload["pool"]["resyncs"] == 1
        # and the mirrored counters are in the metrics section too
        assert payload["metrics"]["counters"]["shard.pool.forks"] == 2
        engine.close_pool()

    def test_pool_to_dict_accepts_engine_mapping_or_none(self):
        workload = pooled_workload()
        engine = workload.amos.rules.engine
        assert pool_to_dict(None) is None
        assert pool_to_dict(engine) == dict(engine.pool_stats)
        assert pool_to_dict(engine.pool_stats) == dict(engine.pool_stats)
        engine.close_pool()
