"""Unit tests for repro.obs.tracing: span nesting, timing, rendering."""

import time

import pytest

from repro.obs import tracing
from repro.obs.tracing import Span, Tracer, recording, render_trace


class TestSpan:
    def test_duration_is_nonnegative_and_freezes_on_finish(self):
        tracer = Tracer()
        span = tracer.begin("work")
        time.sleep(0.001)
        tracer.finish(span)
        frozen = span.duration
        assert frozen >= 0.001
        assert span.finished
        time.sleep(0.001)
        assert span.duration == frozen

    def test_annotate_and_add(self):
        span = Span("s", rows=1)
        span.annotate(mode="fast")
        span.add("rows", 4)
        span.add("new_key", 2)
        assert span.attributes == {"rows": 5, "mode": "fast", "new_key": 2}

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("child"):
                pass
        (root,) = tracer.roots
        assert [s.name for s in root.walk()] == ["root", "child", "leaf", "child"]
        assert len(root.find("child")) == 2

    def test_as_dict_nests_children(self):
        tracer = Tracer()
        with tracer.span("root", n=1):
            with tracer.span("inner"):
                pass
        data = tracer.roots[0].as_dict()
        assert data["name"] == "root"
        assert data["attributes"] == {"n": 1}
        assert data["children"][0]["name"] == "inner"


class TestTracer:
    def test_nesting_follows_begin_finish_order(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        assert tracer.current is inner
        tracer.finish(inner)
        assert tracer.current is outer
        tracer.finish(outer)
        assert tracer.current is None
        assert [span.name for span in tracer.roots] == ["outer"]
        assert [span.name for span in outer.children] == ["inner"]

    def test_finishing_an_outer_span_closes_dangling_children(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.finish(outer)  # inner was never finished explicitly
        assert inner.finished
        assert outer.finished
        assert tracer.current is None

    def test_exception_inside_span_context_still_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        assert tracer.roots[0].finished
        assert tracer.current is None

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]


class TestRecordingScope:
    def test_installs_and_restores(self):
        assert tracing.ACTIVE is None
        with recording() as tracer:
            assert tracing.ACTIVE is tracer
        assert tracing.ACTIVE is None

    def test_restores_previous_tracer(self):
        with recording() as outer:
            with recording() as inner:
                assert tracing.ACTIVE is inner
            assert tracing.ACTIVE is outer


class TestRenderTrace:
    def make_trace(self):
        tracer = Tracer()
        with tracer.span("check_phase"):
            with tracer.span("propagate"):
                with tracer.span("edge:Δcnd/Δ+quantity") as edge:
                    edge.annotate(out=3, guarded=1)
        return tracer

    def test_renders_tree_with_indentation(self):
        text = render_trace(self.make_trace())
        lines = text.splitlines()
        assert lines[0].startswith("check_phase")
        assert lines[1].startswith("  propagate")
        assert lines[2].startswith("    edge:Δcnd/Δ+quantity")

    def test_renders_attributes_and_timings(self):
        text = render_trace(self.make_trace())
        assert "guarded=1" in text
        assert "out=3" in text
        assert "ms" in text

    def test_rejects_non_trace_input(self):
        with pytest.raises(TypeError, match="Tracer or Span"):
            render_trace(None)

    def test_accepts_a_single_span(self):
        tracer = self.make_trace()
        edge = tracer.roots[0].find("propagate")[0]
        text = render_trace(edge)
        assert text.splitlines()[0].startswith("propagate")
