"""The naive-recompute consistency oracle (DBSP/DBToaster style).

Incremental view maintenance engines are only trusted when their
incremental results are continuously checked against full
recomputation.  This suite generates random transaction workloads over
an AMOSQL schema whose monitored rule conditions cover every operator
the paper's partial differencing handles —

* σ   selection         (``val(n) < 5``)
* π   projection        (through the derived function ``double_val``)
* ⋈   join              (``link(n) = m and val(m) > 3``)
* −   negation          (``tag(n) = 1 and not (val(n) < 3)``)
* ∪   disjunction       (``val(n) < 2 or tag(n) > 5``)

with both strict and nervous semantics — and, after EVERY commit,
checks three independent derivations of each condition against each
other:

1. **from scratch**: a fresh evaluator recomputes the condition's full
   extension from the live base relations;
2. **the model**: a pure-Python dict model of the stored functions
   recomputes what the extension *should* be;
3. **incrementally maintained**: the naive engine's materialized
   previous results, and a running extension folded from the
   incremental engine's per-commit condition delta-sets.

Fired-rule multisets are compared per commit between the incremental
and the naive database, and strict rules additionally against the
model-predicted transition set (strict fires exactly on rows entering
the condition).

Run size: ``ORACLE_EXAMPLES`` (default 25 so tier-1 stays fast; CI's
oracle job runs 500+, see docs/TESTING.md).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.amosql.interpreter import AmosqlEngine

pytestmark = pytest.mark.oracle

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

N_NODES = 4

SCHEMA = """
create type node;
create function val(node) -> integer;
create function tag(node) -> integer;
create function link(node) -> node;
create function double_val(node n) -> integer as select val(n) * 2;
"""

RULES = """
create rule r_sigma() as
    when for each node n where val(n) < 5
    do log_sigma(n);
create rule r_pi() as
    when for each node n where double_val(n) > 10
    do log_pi(n);
create rule r_join() as
    when for each node n, node m where link(n) = m and val(m) > 3
    do log_join(n, m);
create rule r_neg() as
    when for each node n where tag(n) = 1 and not (val(n) < 3)
    do log_neg(n);
create rule r_union() as
    when for each node n where val(n) < 2 or tag(n) > 5
    do log_union(n);
create rule r_nervous() as
    when for each node n where val(n) < 5
    nervous do log_nervous(n);
activate r_sigma();
activate r_pi();
activate r_join();
activate r_neg();
activate r_union();
activate r_nervous();
"""

#: rule -> (condition predicate, arity of the logged row)
CONDITIONS = {
    "r_sigma": "cnd_r_sigma",
    "r_pi": "cnd_r_pi",
    "r_join": "cnd_r_join",
    "r_neg": "cnd_r_neg",
    "r_union": "cnd_r_union",
    "r_nervous": "cnd_r_nervous",
}

STRICT_RULES = ("r_sigma", "r_pi", "r_join", "r_neg", "r_union")


def build(mode):
    """A fresh monitored database + its nodes + its firing log."""
    engine = AmosqlEngine(mode=mode, explain=True)
    fired = []
    for rule in CONDITIONS:
        name = f"log_{rule[2:]}"
        arity = 2 if rule == "r_join" else 1
        engine.amos.create_procedure(
            name,
            tuple("node" for _ in range(arity)),
            # default-arg trick pins the rule name per procedure
            lambda *args, _rule=rule: fired.append((_rule, args)),
        )
    engine.execute(SCHEMA)
    decls = ", ".join(f":n{i}" for i in range(N_NODES))
    engine.execute(f"create node instances {decls};")
    nodes = [engine.get(f"n{i}") for i in range(N_NODES)]
    engine.execute(RULES)
    return engine, nodes, fired


class Model:
    """Pure-Python ground truth for the stored functions and conditions."""

    def __init__(self, nodes):
        self.nodes = nodes
        self.val = {}
        self.tag = {}
        self.link = {}

    def apply(self, ops):
        for op in ops:
            kind = op[0]
            if kind == "val":
                self.val[self.nodes[op[1]]] = op[2]
            elif kind == "tag":
                self.tag[self.nodes[op[1]]] = op[2]
            elif kind == "link":
                self.link[self.nodes[op[1]]] = self.nodes[op[2]]
            elif kind == "clear_val":
                self.val.pop(self.nodes[op[1]], None)
            elif kind == "clear_tag":
                self.tag.pop(self.nodes[op[1]], None)
            elif kind == "clear_link":
                self.link.pop(self.nodes[op[1]], None)
            else:  # pragma: no cover - strategy only emits the six kinds
                raise AssertionError(op)

    def extensions(self):
        val, tag, link = self.val, self.tag, self.link
        return {
            "cnd_r_sigma": {(n,) for n, v in val.items() if v < 5},
            "cnd_r_pi": {(n,) for n, v in val.items() if v * 2 > 10},
            "cnd_r_join": {
                (n, m)
                for n, m in link.items()
                if m in val and val[m] > 3
            },
            "cnd_r_neg": {
                (n,)
                for n, t in tag.items()
                if t == 1 and not (n in val and val[n] < 3)
            },
            "cnd_r_union": {
                (n,)
                for n in self.nodes
                if (n in val and val[n] < 2) or (n in tag and tag[n] > 5)
            },
            "cnd_r_nervous": {(n,) for n, v in val.items() if v < 5},
        }


def apply_ops(amos, nodes, ops):
    for op in ops:
        kind = op[0]
        if kind == "val":
            amos.set_value("val", [nodes[op[1]]], op[2])
        elif kind == "tag":
            amos.set_value("tag", [nodes[op[1]]], op[2])
        elif kind == "link":
            amos.set_value("link", [nodes[op[1]]], nodes[op[2]])
        elif kind == "clear_val":
            amos.clear_value("val", [nodes[op[1]]])
        elif kind == "clear_tag":
            amos.clear_value("tag", [nodes[op[1]]])
        elif kind == "clear_link":
            amos.clear_value("link", [nodes[op[1]]])


def fold_deltas(running, report):
    """Fold one check phase's condition delta-sets into running extensions."""
    if report is None:
        return
    for iteration in report.iterations:
        for condition, delta in iteration.condition_deltas.items():
            if condition not in running:
                continue
            running[condition] -= delta.minus
            running[condition] |= delta.plus


def per_commit(fired, marks):
    """Slice the flat firing log into one sorted multiset per commit."""
    out = []
    for start, end in zip(marks, marks[1:]):
        out.append(sorted(fired[start:end], key=repr))
    return out


node_ids = st.integers(0, N_NODES - 1)
values = st.integers(0, 8)
operation = st.one_of(
    st.tuples(st.just("val"), node_ids, values),
    st.tuples(st.just("tag"), node_ids, values),
    st.tuples(st.just("link"), node_ids, node_ids),
    st.tuples(st.just("clear_val"), node_ids),
    st.tuples(st.just("clear_tag"), node_ids),
    st.tuples(st.just("clear_link"), node_ids),
)
# one transaction: its operations plus whether it commits or rolls back
transactions = st.lists(
    st.tuples(st.lists(operation, min_size=1, max_size=6), st.booleans()),
    min_size=1,
    max_size=8,
)


class TestConsistencyOracle:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions)
    def test_incremental_matches_naive_recompute(self, workload):
        inc_engine, inc_nodes, inc_fired = build("incremental")
        nai_engine, nai_nodes, nai_fired = build("naive")
        model = Model(inc_nodes)
        # running extensions folded from the incremental engine's deltas
        running = {cnd: set() for cnd in CONDITIONS.values()}
        previous_expected = {cnd: set() for cnd in CONDITIONS.values()}
        inc_marks, nai_marks = [len(inc_fired)], [len(nai_fired)]
        expected_strict = []

        for ops, commits in workload:
            for amos, nodes in (
                (inc_engine.amos, inc_nodes),
                (nai_engine.amos, nai_nodes),
            ):
                amos.begin()
                apply_ops(amos, nodes, ops)
                if commits:
                    amos.commit()
                else:
                    amos.rollback()
            if not commits:
                # rolled back: state must be exactly the pre-transaction one
                for cnd, expected in previous_expected.items():
                    assert inc_engine.amos.extension(cnd) == expected
                    assert nai_engine.amos.extension(cnd) == expected
                continue

            model.apply(ops)
            expected = model.extensions()
            # translate model node ids (inc OIDs) for the naive db: the
            # two databases create OIDs in the same order, so the i-th
            # node corresponds 1:1
            remap = dict(zip(inc_nodes, nai_nodes))
            fold_deltas(running, inc_engine.amos.rules.last_report)
            inc_marks.append(len(inc_fired))
            nai_marks.append(len(nai_fired))

            strict_transitions = []
            for rule in STRICT_RULES:
                cnd = CONDITIONS[rule]
                for row in sorted(
                    expected[cnd] - previous_expected[cnd], key=repr
                ):
                    strict_transitions.append((rule, tuple(row)))
            expected_strict.append(sorted(strict_transitions, key=repr))

            for cnd in CONDITIONS.values():
                from_scratch = set(inc_engine.amos.extension(cnd))
                # 1. from-scratch recompute == model ground truth
                assert from_scratch == expected[cnd], cnd
                # 2. incremental delta folding == from-scratch
                assert running[cnd] == from_scratch, cnd
                # 3. naive engine's materialized previous == from-scratch
                naive_expected = {
                    tuple(remap[v] for v in row) for row in expected[cnd]
                }
                assert (
                    nai_engine.amos.rules.engine._previous[cnd]
                    == naive_expected
                ), cnd
                assert set(nai_engine.amos.extension(cnd)) == naive_expected
            previous_expected = expected

        # 4. fired-rule multisets, commit by commit.  Strict rules must
        # agree across engines AND match the model's transition sets.
        # Nervous rules are deliberately excluded from the cross-engine
        # comparison: the incremental engine re-derives a condition row
        # from a confirming update (val 0 -> 1 with val < 5) and
        # nervously re-fires, while the naive baseline diffs
        # materialized extensions and cannot see confirming updates —
        # the paper's nervous semantics follow the differentials, so
        # this is an engine-visible behavior, not a bug (the bounds on
        # nervous firings are locked down in the second test).
        back = dict(zip(nai_nodes, inc_nodes))
        inc_firings = per_commit(inc_fired, inc_marks)
        nai_firings = [
            [
                (rule, tuple(back[v] for v in args))
                for rule, args in commit_batch
            ]
            for commit_batch in per_commit(nai_fired, nai_marks)
        ]
        for inc_batch, nai_batch, expected_batch in zip(
            inc_firings, nai_firings, expected_strict
        ):
            inc_strict = sorted(
                (f for f in inc_batch if f[0] in STRICT_RULES), key=repr
            )
            nai_strict = sorted(
                (f for f in nai_batch if f[0] in STRICT_RULES), key=repr
            )
            assert inc_strict == nai_strict == expected_batch
            # under the naive engine, nervous degenerates to strict:
            # its deltas only ever contain genuine transitions
            nai_nervous = sorted(
                (args for rule, args in nai_batch if rule == "r_nervous"),
                key=repr,
            )
            nai_sigma = sorted(
                (args for rule, args in nai_batch if rule == "r_sigma"),
                key=repr,
            )
            assert nai_nervous == nai_sigma

    @settings(max_examples=max(5, MAX_EXAMPLES // 5), deadline=None)
    @given(workload=transactions)
    def test_nervous_fires_at_least_strict_transitions(self, workload):
        """Nervous semantics may re-fire on confirming updates but never
        misses a genuine transition a strict rule would report."""
        engine, nodes, fired = build("incremental")
        model = Model(nodes)
        for ops, commits in workload:
            mark = len(fired)
            engine.amos.begin()
            apply_ops(engine.amos, nodes, ops)
            if not commits:
                engine.amos.rollback()
                continue
            engine.amos.commit()
            model.apply(ops)
            expected = model.extensions()["cnd_r_nervous"]
            nervous = {
                args for rule, args in fired[mark:] if rule == "r_nervous"
            }
            strict = {
                args for rule, args in fired[mark:] if rule == "r_sigma"
            }
            # same condition: every strict transition appears nervously too
            assert strict <= nervous
            # nervous never fires on rows outside the (new) condition
            assert nervous <= expected
