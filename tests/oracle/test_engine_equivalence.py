"""A/B oracle: the batch check phase must be indistinguishable from legacy.

The set-at-a-time engine (compiled differential plans, two shared
evaluators per run, batched semi-join negative guards) and the legacy
tuple-at-a-time engine are two executors of the SAME calculus, so on
identical transaction workloads they must produce

* identical condition delta-sets per check-phase iteration,
* identical propagation traces — same differential labels in the same
  order, same produced rows, same guard decisions (``guarded_away``),
* identical rule firings, commit by commit and in order.

The generated schema covers every operator partial differencing
handles — σ selection, π projection (derived function), ⋈ join,
− negation, ∪ disjunction — plus an aggregate condition (per-group
incremental recompute), because the aggregate path shares the run
evaluators in batch mode and must not observe stale memos.

Run size: ``ORACLE_EXAMPLES`` (default 25 so tier-1 stays fast; CI's
oracle job runs 500+, see docs/TESTING.md).
"""

import os
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.amosql.interpreter import AmosqlEngine
from repro.bench.workload import build_inventory

pytestmark = pytest.mark.oracle

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

N_NODES = 4

SCHEMA = """
create type node;
create function val(node) -> integer;
create function tag(node) -> integer;
create function link(node) -> node;
create function link2(node) -> node;
create function link3(node) -> node;
create function double_val(node n) -> integer as select val(n) * 2;
create function fanin_total(node g) -> integer as
    select sum(val(m)) for each node m where link(m) = g;
"""

RULES = """
create rule r_sigma() as
    when for each node n where val(n) < 5
    do log_sigma(n);
create rule r_pi() as
    when for each node n where double_val(n) > 10
    do log_pi(n);
create rule r_join() as
    when for each node n, node m where link(n) = m and val(m) > 3
    do log_join(n, m);
create rule r_neg() as
    when for each node n where tag(n) = 1 and not (val(n) < 3)
    do log_neg(n);
create rule r_union() as
    when for each node n where val(n) < 2 or tag(n) > 5
    do log_union(n);
create rule r_agg() as
    when for each node g where fanin_total(g) > 6
    do log_agg(g);
create rule r_tri() as
    when for each node x, node y, node z
    where link(x) = y and link2(y) = z and link3(x) = z
    do log_tri(x, y, z);
create rule r_quad() as
    when for each node x, node y, node z
    where link(x) = y and link2(y) = z and link3(x) = z and val(z) > 3
    do log_quad(x, y, z);
activate r_sigma();
activate r_pi();
activate r_join();
activate r_neg();
activate r_union();
activate r_agg();
activate r_tri();
activate r_quad();
"""

LOGGED_RULES = ("r_sigma", "r_pi", "r_join", "r_neg", "r_union", "r_agg",
                "r_tri", "r_quad")
RULE_ARITY = {"r_join": 2, "r_tri": 3, "r_quad": 3}


def build(batch, **engine_options):
    """A fresh monitored incremental database + nodes + firing log.

    ``engine_options`` flow through to the rule manager — the WCOJ
    oracle passes ``wcoj``/``higher_order`` to build the A and B
    engines of the same calculus.
    """
    engine = AmosqlEngine(
        mode="incremental", explain=True, batch=batch, **engine_options
    )
    fired = []
    for rule in LOGGED_RULES:
        arity = RULE_ARITY.get(rule, 1)
        engine.amos.create_procedure(
            f"log_{rule[2:]}",
            tuple("node" for _ in range(arity)),
            lambda *args, _rule=rule: fired.append((_rule, args)),
        )
    engine.execute(SCHEMA)
    decls = ", ".join(f":n{i}" for i in range(N_NODES))
    engine.execute(f"create node instances {decls};")
    nodes = [engine.get(f"n{i}") for i in range(N_NODES)]
    engine.execute(RULES)
    return engine, nodes, fired


def apply_ops(amos, nodes, ops):
    for op in ops:
        kind = op[0]
        if kind == "val":
            amos.set_value("val", [nodes[op[1]]], op[2])
        elif kind == "tag":
            amos.set_value("tag", [nodes[op[1]]], op[2])
        elif kind in ("link", "link2", "link3"):
            amos.set_value(kind, [nodes[op[1]]], nodes[op[2]])
        elif kind == "clear_val":
            amos.clear_value("val", [nodes[op[1]]])
        elif kind == "clear_tag":
            amos.clear_value("tag", [nodes[op[1]]])
        elif kind in ("clear_link", "clear_link2", "clear_link3"):
            amos.clear_value(kind[len("clear_"):], [nodes[op[1]]])


_AUX_NAME = re.compile(r"_not_\d+")


def _normalizer():
    """Rename gensym'd auxiliary predicates (``_not_<n>``) to canonical
    names by order of first appearance: the counter is process-global,
    so two databases built in the same process disagree on the suffix
    without disagreeing on anything semantic."""
    mapping = {}

    def normalize(text):
        return _AUX_NAME.sub(
            lambda m: mapping.setdefault(m.group(0), f"_aux{len(mapping)}"),
            text,
        )

    return normalize


def trace_digest(trace, normalize):
    """A propagation trace as comparable plain data (execution order
    preserved — both engines walk the same network bottom-up)."""
    if trace is None:
        return None
    return [
        (
            normalize(e.label),
            normalize(e.target),
            e.input_sign,
            e.output_sign,
            e.input_size,
            frozenset(e.produced),
            frozenset(e.guarded_away),
        )
        for e in trace.executions
    ]


def report_digest(report, normalize=None):
    """One check phase as comparable plain data."""
    if report is None:
        return None
    if normalize is None:
        normalize = _normalizer()
    return [
        (
            iteration.index,
            {
                normalize(name): (delta.plus, delta.minus)
                for name, delta in iteration.condition_deltas.items()
            },
            trace_digest(iteration.trace, normalize),
            None
            if iteration.fired is None
            else (iteration.fired.rule, iteration.fired.rows),
        )
        for iteration in report.iterations
    ]


node_ids = st.integers(0, N_NODES - 1)
values = st.integers(0, 8)
operation = st.one_of(
    st.tuples(st.just("val"), node_ids, values),
    st.tuples(st.just("tag"), node_ids, values),
    st.tuples(st.just("link"), node_ids, node_ids),
    st.tuples(st.just("link2"), node_ids, node_ids),
    st.tuples(st.just("link3"), node_ids, node_ids),
    st.tuples(st.just("clear_val"), node_ids),
    st.tuples(st.just("clear_tag"), node_ids),
    st.tuples(st.just("clear_link"), node_ids),
    st.tuples(st.just("clear_link2"), node_ids),
    st.tuples(st.just("clear_link3"), node_ids),
)
transactions = st.lists(
    st.tuples(st.lists(operation, min_size=1, max_size=6), st.booleans()),
    min_size=1,
    max_size=8,
)


class TestEngineEquivalence:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions)
    def test_batch_engine_matches_legacy(self, workload):
        bat_engine, bat_nodes, bat_fired = build(batch=True)
        leg_engine, leg_nodes, leg_fired = build(batch=False)
        # identical creation order => identical OIDs (compared by id)
        assert bat_nodes == leg_nodes

        for ops, commits in workload:
            for amos, nodes in (
                (bat_engine.amos, bat_nodes),
                (leg_engine.amos, leg_nodes),
            ):
                amos.begin()
                apply_ops(amos, nodes, ops)
                if commits:
                    amos.commit()
                else:
                    amos.rollback()
            if not commits:
                continue

            bat_report = report_digest(bat_engine.amos.rules.last_report)
            leg_report = report_digest(leg_engine.amos.rules.last_report)
            assert bat_report == leg_report
            # the full firing history must agree in content AND order
            assert bat_fired == leg_fired

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions)
    def test_guard_decisions_match(self, workload):
        """Every negative differential's guard verdict — which deletion
        candidates were dropped because they are still derivable — must
        be identical between the batched semi-join and per-row holds()."""
        bat_engine, bat_nodes, _ = build(batch=True)
        leg_engine, leg_nodes, _ = build(batch=False)

        def guard_log(engine):
            out = []
            normalize = _normalizer()
            report = engine.amos.rules.last_report
            if report is None:
                return out
            for iteration in report.iterations:
                if iteration.trace is None:
                    continue
                for e in iteration.trace.executions:
                    if e.output_sign == "-":
                        out.append(
                            (
                                normalize(e.label),
                                frozenset(e.guarded_away),
                                frozenset(e.produced),
                            )
                        )
            return out

        saw_guard_drop = False
        for ops, commits in workload:
            for amos, nodes in (
                (bat_engine.amos, bat_nodes),
                (leg_engine.amos, leg_nodes),
            ):
                amos.begin()
                apply_ops(amos, nodes, ops)
                if commits:
                    amos.commit()
                else:
                    amos.rollback()
            if not commits:
                continue
            bat_log = guard_log(bat_engine)
            leg_log = guard_log(leg_engine)
            assert bat_log == leg_log
            saw_guard_drop = saw_guard_drop or any(
                dropped for _, dropped, _ in bat_log
            )


class TestWcojEquivalence:
    """A/B oracle for the join kernels: the WCOJ + higher-order path
    and the pure pairwise chain are two executors of the same partial
    differencing calculus — identical condition deltas, guard
    decisions, and rule firings on every workload, multi-way joins
    included (``r_tri``/``r_quad`` fuse; the rest stay pairwise)."""

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions)
    def test_wcoj_matches_pairwise_chain(self, workload):
        opt_engine, opt_nodes, opt_fired = build(
            batch=True, wcoj=True, higher_order=True
        )
        ref_engine, ref_nodes, ref_fired = build(
            batch=True, wcoj=False, higher_order=False
        )
        assert opt_nodes == ref_nodes

        for ops, commits in workload:
            for amos, nodes in (
                (opt_engine.amos, opt_nodes),
                (ref_engine.amos, ref_nodes),
            ):
                amos.begin()
                apply_ops(amos, nodes, ops)
                if commits:
                    amos.commit()
                else:
                    amos.rollback()
            if not commits:
                continue

            opt_report = report_digest(opt_engine.amos.rules.last_report)
            ref_report = report_digest(ref_engine.amos.rules.last_report)
            assert opt_report == ref_report
            assert opt_fired == ref_fired

    def test_multiway_rules_actually_fuse(self):
        """The oracle is vacuous if no plan takes the kernel path —
        pin that the triangle/quad differentials fused and carry a
        higher-order memo."""
        engine, _, _ = build(batch=True, wcoj=True, higher_order=True)
        network = engine.amos.rules.engine.network
        fused_plans = 0
        memos = 0
        for edge in network.edges():
            for d in edge.differentials():
                if d.plan is not None and d.plan.fused:
                    fused_plans += 1
                if d.ho is not None:
                    memos += 1
                    if d.state == "new":
                        assert d.influent not in d.ho.support
        assert fused_plans > 0
        assert memos > 0


class TestInventoryEquivalence:
    """Deterministic A/B over the paper's Fig. 6 inventory schema:
    threshold churn fires the rule and exercises the negative guard."""

    def run_churn(self, batch):
        workload = build_inventory(12, mode="incremental", batch=batch, explain=True)
        workload.activate()
        reports = []
        for step in range(40):
            workload.touch_one_item(step, below=(step % 2 == 0))
            reports.append(report_digest(workload.amos.rules.last_report))
        workload.massive_change(quantity_delta=-30)
        reports.append(report_digest(workload.amos.rules.last_report))
        orders = [(item.id, amount) for item, amount in workload.orders]
        return orders, reports

    def test_orders_and_reports_identical(self):
        bat_orders, bat_reports = self.run_churn(batch=True)
        leg_orders, leg_reports = self.run_churn(batch=False)
        assert bat_orders == leg_orders
        assert bat_orders, "churn workload must fire the rule"
        assert bat_reports == leg_reports
