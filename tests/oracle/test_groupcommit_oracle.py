"""The group-commit oracle: a grouped batch ≡ ONE merged transaction.

Hypothesis generates batches of member transactions over the inventory
schema (quantities straddle the threshold, members may collide on the
same items, members may fail mid-apply) and pins ``apply_group`` to the
single-merged-transaction reference on every axis the server acks or
observes:

* final state       — ``snapshot_extensions()`` byte for byte
* rule firings      — the ``order(...)`` multiset
* condition deltas  — per-iteration ``DeltaSet``s of the check phase
* the wave trace    — which differentials executed, which rows fired
* the epoch         — one publication for the whole batch

Two ``build_inventory`` calls with the same seed create identical
OIDs, so everything compares with plain equality.  Run size:
``ORACLE_EXAMPLES`` (default 25 so tier-1 stays fast; CI's oracle job
runs 500+, see docs/TESTING.md).
"""

import os
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workload import build_inventory

pytestmark = pytest.mark.oracle

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

N_ITEMS = 4
SEED = 99

# straddle the constant threshold (140) so firings enter and recover
quantity = st.integers(min_value=100, max_value=180)
update = st.tuples(st.integers(0, N_ITEMS - 1), quantity)
member = st.lists(update, min_size=1, max_size=4)
batch = st.lists(member, min_size=1, max_size=5)
# a member plus whether it raises AFTER performing its updates
fallible_batch = st.lists(
    st.tuples(member, st.booleans()), min_size=1, max_size=5
)


def fresh_workload():
    workload = build_inventory(N_ITEMS, seed=SEED, explain=True)
    workload.activate()
    workload.amos.storage.auto_publish = True
    workload.amos.storage.publish_snapshot()
    return workload


def make_unit(workload, updates, fail=False):
    def unit():
        for index, value in updates:
            workload.amos.set_value(
                "quantity", (workload.items[index],), value
            )
        if fail:
            raise RuntimeError("member fails after its updates")

    return unit


def check_phase_signature(amos):
    """The deterministic residue of the last check phase: per-iteration
    condition deltas, fired rows, and the executed differentials."""
    report = amos.rules.last_report
    if report is None:
        return None
    return [
        (
            iteration.condition_deltas,
            iteration.fired.rule if iteration.fired else None,
            iteration.fired.rows if iteration.fired else None,
        )
        for iteration in report.iterations
    ], report.executed_differentials()


def run_grouped(members, fail_flags=None):
    workload = fresh_workload()
    fail_flags = fail_flags or [False] * len(members)
    units = [
        make_unit(workload, updates, fail=fail)
        for updates, fail in zip(members, fail_flags)
    ]
    outcomes = workload.amos.apply_group(units)
    return workload, outcomes


def run_merged(members, fail_flags=None):
    """The reference: every surviving member's updates, in member
    order, inside ONE transaction (failed members contribute nothing —
    their savepoint rollback excises them from the batch)."""
    workload = fresh_workload()
    fail_flags = fail_flags or [False] * len(members)
    with workload.amos.transaction():
        for updates, fail in zip(members, fail_flags):
            if fail:
                continue
            for index, value in updates:
                workload.amos.set_value(
                    "quantity", (workload.items[index],), value
                )
    return workload


def assert_equivalent(grouped, merged, check_epoch=True):
    assert (
        grouped.amos.snapshot_extensions()
        == merged.amos.snapshot_extensions()
    )
    assert Counter(grouped.orders) == Counter(merged.orders)
    assert check_phase_signature(grouped.amos) == check_phase_signature(
        merged.amos
    )
    if check_epoch:
        assert (
            grouped.amos.storage.snapshot_epoch
            == merged.amos.storage.snapshot_epoch
        )


class TestGroupedEqualsMerged:
    @given(members=batch)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_batch_is_one_merged_transaction(self, members):
        grouped, outcomes = run_grouped(members)
        assert all(
            outcome.ok and not outcome.retried for outcome in outcomes
        )
        assert_equivalent(grouped, run_merged(members))

    @given(members=fallible_batch)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_failing_members_are_excised_from_the_batch(self, members):
        updates = [m for m, _ in members]
        fail_flags = [fail for _, fail in members]
        grouped, outcomes = run_grouped(updates, fail_flags)
        for outcome, fail in zip(outcomes, fail_flags):
            assert outcome.ok is (not fail)
            assert (outcome.error is not None) is fail
        # epoch is not compared here: when every surviving change nets
        # to nothing, the grouped run's undo replay still dirties the
        # relations, publishing one content-identical extra epoch the
        # empty reference transaction never publishes
        assert_equivalent(
            grouped, run_merged(updates, fail_flags), check_epoch=False
        )
