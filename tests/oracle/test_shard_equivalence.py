"""Sharded-≡-serial oracle: N-shard check phases must be invisible.

The sharded engine (docs/SHARDING.md) hash-partitions each wave's
Δ-map across forked propagation workers and folds the per-shard
condition deltas back at a merge barrier.  The whole construction
claims *observational identity* with the serial engine, so on random
programs and random transaction workloads, for shards ∈ {1, 2, 4}:

* identical base-relation extensions after every commit,
* identical condition delta-sets per check-phase iteration,
* identical rule firings, commit by commit and in order,
* identical snapshot epochs (one epoch per commit, no worker ever
  publishes).

Propagation *traces* are deliberately NOT compared: per-shard waves
execute the same differentials against partition-sized inputs, so
input sizes and execution interleaving legitimately differ while every
observable result agrees.

Since the pool became persistent (docs/SHARDING.md) the same run also
pins the pool invariants: workers are REUSED across the workload's
commits (state leaking from one commit into the next would break the
digests), and a worker killed between commits is respawned via the
replica-sync handshake with no observable difference from a fresh
fork — :class:`TestResyncEquivalence` kills one every round.

``policy="fanout"`` is pinned throughout: the oracle's deltas are tiny
and the default auto policy would route them all serial, testing
nothing.

The schema is the engine-equivalence oracle's: σ, π, ⋈, ¬, ∪ and an
aggregate condition, so every differential class crosses the merge
barrier.  Run size: ``ORACLE_EXAMPLES`` (default 25; CI's oracle job
runs this file at 200+ with a logged seed, see docs/TESTING.md).
"""

import os
import signal

import pytest
from hypothesis import given, settings, strategies as st

from tests.oracle.test_engine_equivalence import (
    N_NODES,
    RULES,
    RULE_ARITY,
    SCHEMA,
    LOGGED_RULES,
    _normalizer,
    apply_ops,
    transactions,
)

from repro.amosql.interpreter import AmosqlEngine
from repro.shard.engine import ShardedEngine

pytestmark = pytest.mark.oracle

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

SHARD_COUNTS = (1, 2, 4)


def build(shards):
    """A monitored incremental database; ``shards=None`` = serial."""
    options = {} if shards is None else {
        "shards": shards,
        "shard_options": {"policy": "fanout"},
    }
    engine = AmosqlEngine(mode="incremental", explain=True, **options)
    engine.amos.storage.auto_publish = True
    engine.amos.storage.publish_snapshot()
    fired = []
    for rule in LOGGED_RULES:
        arity = RULE_ARITY.get(rule, 1)
        engine.amos.create_procedure(
            f"log_{rule[2:]}",
            tuple("node" for _ in range(arity)),
            lambda *args, _rule=rule: fired.append((_rule, args)),
        )
    engine.execute(SCHEMA)
    decls = ", ".join(f":n{i}" for i in range(N_NODES))
    engine.execute(f"create node instances {decls};")
    nodes = [engine.get(f"n{i}") for i in range(N_NODES)]
    engine.execute(RULES)
    return engine, nodes, fired


def observable_digest(engine, normalize):
    """Everything a client can see of the last check phase — condition
    deltas per iteration and firings — WITHOUT the trace (per-shard
    input sizes legitimately differ from serial)."""
    report = engine.amos.rules.last_report
    if report is None:
        return None
    return [
        (
            iteration.index,
            {
                normalize(name): (delta.plus, delta.minus)
                for name, delta in iteration.condition_deltas.items()
            },
            None
            if iteration.fired is None
            else (iteration.fired.rule, iteration.fired.rows),
        )
        for iteration in report.iterations
    ]


def close_pools(variants):
    for engine, _, _ in variants:
        sharded = engine.amos.rules.engine
        if isinstance(sharded, ShardedEngine):
            sharded.close_pool()


class TestShardEquivalence:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions)
    def test_sharded_matches_serial(self, workload):
        serial_engine, serial_nodes, serial_fired = build(None)
        variants = [build(shards) for shards in SHARD_COUNTS]
        try:
            for engine, nodes, _ in variants:
                # identical creation order => identical OIDs
                assert nodes == serial_nodes
                if engine.amos.shards > 1:
                    assert isinstance(engine.amos.rules.engine, ShardedEngine)

            pooled_pids = {}
            for ops, commits in workload:
                for engine, nodes, _ in [
                    (serial_engine, serial_nodes, serial_fired)
                ] + variants:
                    engine.amos.begin()
                    apply_ops(engine.amos, nodes, ops)
                    if commits:
                        engine.amos.commit()
                    else:
                        engine.amos.rollback()
                if not commits:
                    continue

                serial_digest = observable_digest(serial_engine, _normalizer())
                serial_snapshot = serial_engine.amos.snapshot_extensions()
                serial_epoch = serial_engine.amos.snapshot_epoch
                for shards, (engine, _, fired) in zip(SHARD_COUNTS, variants):
                    label = f"shards={shards}"
                    digest = observable_digest(engine, _normalizer())
                    assert digest == serial_digest, label
                    assert fired == serial_fired, label
                    assert (
                        engine.amos.snapshot_extensions() == serial_snapshot
                    ), label
                    assert engine.amos.snapshot_epoch == serial_epoch, label
                    # pool invariant: once forked, the SAME workers
                    # serve every later commit (reuse, not re-fork) —
                    # together with the digests above this is the
                    # no-state-leakage-across-commits check
                    if shards > 1:
                        sharded = engine.amos.rules.engine
                        pids = sharded.pool_pids
                        if shards in pooled_pids:
                            assert pids == pooled_pids[shards], label
                        elif pids:
                            assert len(pids) == shards, label
                            pooled_pids[shards] = pids

            for shards, (engine, _, _) in zip(SHARD_COUNTS, variants):
                if shards > 1:
                    sharded = engine.amos.rules.engine
                    assert sharded.pool_stats["respawns"] == 0
                    # explicit teardown empties the fleet
                    sharded.close_pool()
                    assert sharded.pool_pids == []
        finally:
            close_pools(variants)


class TestResyncEquivalence:
    """A worker SIGKILLed between commits must be indistinguishable:
    the handshake respawns it from the leader's memory and syncs it,
    and every observable of every later commit still matches serial —
    i.e. resynced-worker ≡ fresh-fork-worker ≡ serial."""

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions, victim=st.integers(min_value=0, max_value=3))
    def test_killed_and_resynced_workers_match_serial(self, workload, victim):
        serial_engine, serial_nodes, serial_fired = build(None)
        engine, nodes, fired = build(2)
        sharded = engine.amos.rules.engine
        try:
            kills = 0
            dead = set()
            for ops, commits in workload:
                # murder one idle worker between commits (skipping one
                # already killed but not yet healed — an unreaped
                # zombie accepts SIGKILL silently)
                pids = sharded.pool_pids
                if pids and pids[victim % len(pids)] not in dead:
                    target = pids[victim % len(pids)]
                    os.kill(target, signal.SIGKILL)
                    dead.add(target)
                    kills += 1
                pre_resyncs = sharded.pool_stats["resyncs"]
                for eng, nds in (
                    (serial_engine, serial_nodes), (engine, nodes)
                ):
                    eng.amos.begin()
                    apply_ops(eng.amos, nds, ops)
                    if commits:
                        eng.amos.commit()
                    else:
                        eng.amos.rollback()
                if not commits:
                    continue
                assert observable_digest(
                    engine, _normalizer()
                ) == observable_digest(serial_engine, _normalizer())
                assert fired == serial_fired
                assert (
                    engine.amos.snapshot_extensions()
                    == serial_engine.amos.snapshot_extensions()
                )
                # a handshake heals ALL earlier kills by respawning,
                # never by re-forking the whole fleet; a commit whose
                # Δ was empty runs no phase and so heals nothing yet
                if sharded.pool_stats["resyncs"] > pre_resyncs:
                    assert sharded.pool_stats["respawns"] == kills
                    assert sharded.pool_stats["forks"] == 2 + kills
        finally:
            sharded.close_pool()
