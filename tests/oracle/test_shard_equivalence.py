"""Sharded-≡-serial oracle: N-shard check phases must be invisible.

The sharded engine (docs/SHARDING.md) hash-partitions each wave's
Δ-map across forked propagation workers and folds the per-shard
condition deltas back at a merge barrier.  The whole construction
claims *observational identity* with the serial engine, so on random
programs and random transaction workloads, for shards ∈ {1, 2, 4}:

* identical base-relation extensions after every commit,
* identical condition delta-sets per check-phase iteration,
* identical rule firings, commit by commit and in order,
* identical snapshot epochs (one epoch per commit, no worker ever
  publishes).

Propagation *traces* are deliberately NOT compared: per-shard waves
execute the same differentials against partition-sized inputs, so
input sizes and execution interleaving legitimately differ while every
observable result agrees.

The schema is the engine-equivalence oracle's: σ, π, ⋈, ¬, ∪ and an
aggregate condition, so every differential class crosses the merge
barrier.  Run size: ``ORACLE_EXAMPLES`` (default 25; CI's oracle job
runs this file at 200+ with a logged seed, see docs/TESTING.md).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from tests.oracle.test_engine_equivalence import (
    N_NODES,
    RULES,
    RULE_ARITY,
    SCHEMA,
    LOGGED_RULES,
    _normalizer,
    apply_ops,
    transactions,
)

from repro.amosql.interpreter import AmosqlEngine
from repro.shard.engine import ShardedEngine

pytestmark = pytest.mark.oracle

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

SHARD_COUNTS = (1, 2, 4)


def build(shards):
    """A monitored incremental database; ``shards=None`` = serial."""
    options = {} if shards is None else {"shards": shards}
    engine = AmosqlEngine(mode="incremental", explain=True, **options)
    engine.amos.storage.auto_publish = True
    engine.amos.storage.publish_snapshot()
    fired = []
    for rule in LOGGED_RULES:
        arity = RULE_ARITY.get(rule, 1)
        engine.amos.create_procedure(
            f"log_{rule[2:]}",
            tuple("node" for _ in range(arity)),
            lambda *args, _rule=rule: fired.append((_rule, args)),
        )
    engine.execute(SCHEMA)
    decls = ", ".join(f":n{i}" for i in range(N_NODES))
    engine.execute(f"create node instances {decls};")
    nodes = [engine.get(f"n{i}") for i in range(N_NODES)]
    engine.execute(RULES)
    return engine, nodes, fired


def observable_digest(engine, normalize):
    """Everything a client can see of the last check phase — condition
    deltas per iteration and firings — WITHOUT the trace (per-shard
    input sizes legitimately differ from serial)."""
    report = engine.amos.rules.last_report
    if report is None:
        return None
    return [
        (
            iteration.index,
            {
                normalize(name): (delta.plus, delta.minus)
                for name, delta in iteration.condition_deltas.items()
            },
            None
            if iteration.fired is None
            else (iteration.fired.rule, iteration.fired.rows),
        )
        for iteration in report.iterations
    ]


class TestShardEquivalence:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=transactions)
    def test_sharded_matches_serial(self, workload):
        serial_engine, serial_nodes, serial_fired = build(None)
        variants = [build(shards) for shards in SHARD_COUNTS]
        for engine, nodes, _ in variants:
            # identical creation order => identical OIDs
            assert nodes == serial_nodes
            if engine.amos.shards > 1:
                assert isinstance(engine.amos.rules.engine, ShardedEngine)

        for ops, commits in workload:
            for engine, nodes, _ in [
                (serial_engine, serial_nodes, serial_fired)
            ] + variants:
                engine.amos.begin()
                apply_ops(engine.amos, nodes, ops)
                if commits:
                    engine.amos.commit()
                else:
                    engine.amos.rollback()
            if not commits:
                continue

            serial_digest = observable_digest(serial_engine, _normalizer())
            serial_snapshot = serial_engine.amos.snapshot_extensions()
            serial_epoch = serial_engine.amos.snapshot_epoch
            for shards, (engine, _, fired) in zip(SHARD_COUNTS, variants):
                label = f"shards={shards}"
                digest = observable_digest(engine, _normalizer())
                assert digest == serial_digest, label
                assert fired == serial_fired, label
                assert (
                    engine.amos.snapshot_extensions() == serial_snapshot
                ), label
                assert engine.amos.snapshot_epoch == serial_epoch, label

        # phase hygiene: no worker pool outlives its commit
        for shards, (engine, _, _) in zip(SHARD_COUNTS, variants):
            if shards > 1:
                assert engine.amos.rules.engine.pool_pids == []
