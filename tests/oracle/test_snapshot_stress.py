"""Snapshot-isolation stress: concurrent writers vs lock-free readers.

N writer sessions commit interleaved transactions that keep a per-pair
invariant (``a(p) == b(p)`` in every *committed* state) while M reader
sessions hammer ``query_ro``.  The oracle facts:

* **no torn state** — every read's rows satisfy the invariant, and all
  reads reporting the same epoch saw byte-identical rows (an epoch
  names exactly one published snapshot);
* **no regress** — each reader's observed epochs are monotone
  non-decreasing (``snapshot.epoch_lag`` never goes negative);
* the server accounted every read in ``server.query_ro`` and the
  ``snapshot.epoch_lag`` histogram.

Set ``SNAPSHOT_LAG_ARTIFACT=/path/file.json`` to dump the epoch-lag
histogram (CI uploads it as a BENCH artifact, see docs/TESTING.md).
"""

import json
import os
import threading

import pytest

from repro.server import AmosClient, AmosServer

pytestmark = pytest.mark.oracle

N_PAIRS = 3  # one writer per pair
N_READERS = 4
COMMITS_PER_WRITER = int(os.environ.get("STRESS_COMMITS", "12"))
READS_PER_READER = int(os.environ.get("STRESS_READS", "25"))

SCHEMA = """
create type pair;
create function a(pair) -> integer;
create function b(pair) -> integer;
"""

INVARIANT_QUERY = (
    "select p, x, y for each pair p, integer x, integer y "
    "where a(p) = x and b(p) = y"
)


def test_readers_see_only_whole_epochs():
    server = AmosServer(port=0)
    server.start()
    host, port = server.address
    failures = []
    # reader -> [(epoch, frozenset(rows)), ...] in observation order
    observations = {r: [] for r in range(N_READERS)}
    barrier = threading.Barrier(N_PAIRS + N_READERS)

    try:
        with AmosClient(host, port) as setup:
            setup.execute(SCHEMA)
            names = ", ".join(f":p{i}" for i in range(N_PAIRS))
            (oids,) = setup.execute(f"create pair instances {names};")
            for oid in oids:
                setup.bind("v", oid)
                setup.execute("set a(:v) = 0; set b(:v) = 0;")

        def writer(index):
            try:
                with AmosClient(host, port) as client:
                    client.bind("p", oids[index])
                    barrier.wait(timeout=60.0)
                    for k in range(1, COMMITS_PER_WRITER + 1):
                        with client.transaction():
                            client.execute(f"set a(:p) = {k};")
                            client.execute(f"set b(:p) = {k};")
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        def reader(index):
            try:
                with AmosClient(host, port) as client:
                    barrier.wait(timeout=60.0)
                    for _ in range(READS_PER_READER):
                        rows = client.query_ro(INVARIANT_QUERY)
                        observations[index].append(
                            (client.last_ro_epoch, frozenset(rows))
                        )
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(N_PAIRS)
        ] + [
            threading.Thread(target=reader, args=(i,))
            for i in range(N_READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
        assert not failures, failures

        by_epoch = {}
        for index, seen in observations.items():
            assert len(seen) == READS_PER_READER
            epochs = [epoch for epoch, _ in seen]
            # epochs never regress within one reader
            assert epochs == sorted(epochs), f"reader {index} saw a regress"
            for epoch, rows in seen:
                # invariant holds in every row: the read is not torn
                # across the two relations of any pair
                for _, x, y in rows:
                    assert x == y, f"torn read at epoch {epoch}: {rows}"
                # one epoch == exactly one row set, across ALL readers
                previous = by_epoch.setdefault(epoch, rows)
                assert previous == rows, f"epoch {epoch} is not one snapshot"

        total_reads = N_READERS * READS_PER_READER
        lag_histogram = server.registry.histogram("snapshot.epoch_lag")
        assert server.registry.value("server.query_ro") == total_reads
        assert lag_histogram.count == total_reads
        assert lag_histogram.min >= 0

        artifact = os.environ.get("SNAPSHOT_LAG_ARTIFACT")
        if artifact:
            payload = {
                "metric": "snapshot.epoch_lag",
                "writers": N_PAIRS,
                "readers": N_READERS,
                "commits_per_writer": COMMITS_PER_WRITER,
                "reads_per_reader": READS_PER_READER,
                "histogram": lag_histogram.as_dict(),
                "p50": lag_histogram.quantile(0.5),
                "p99": lag_histogram.quantile(0.99),
                "final_epoch": server.amos.snapshot_epoch,
            }
            os.makedirs(os.path.dirname(artifact) or ".", exist_ok=True)
            with open(artifact, "w") as handle:
                json.dump(payload, handle, indent=2, default=repr)
    finally:
        server.stop()


def test_final_state_reflects_all_commits():
    """After the dust settles the latest snapshot equals the live state."""
    server = AmosServer(port=0)
    server.start()
    host, port = server.address
    try:
        with AmosClient(host, port) as client:
            client.execute(SCHEMA)
            (oids,) = client.execute("create pair instances :p0;")
            client.bind("p", oids[0])
            for k in range(5):
                with client.transaction():
                    client.execute(f"set a(:p) = {k}; set b(:p) = {k};")
            assert sorted(client.query_ro("select x for each integer x where a(:p) = x")) == [(4,)]
            assert client.query_ro(INVARIANT_QUERY) == client.query(
                INVARIANT_QUERY
            )
    finally:
        server.stop()
