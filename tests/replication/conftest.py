"""Shared fixtures for the replication suite.

Server hygiene mirrors ``tests/server/conftest.py`` (no leaked global
observers).  Every server here binds port 0 — the OS picks a free
port — so parallel CI runs can't collide (see ``test_ports.py``).
"""

import pytest

from repro.bench.workload import build_inventory
from repro.obs import metrics, tracing
from repro.server.server import AmosServer


@pytest.fixture(autouse=True)
def no_observer_leaks():
    assert metrics.ACTIVE is None, "a metrics registry leaked into this test"
    assert tracing.ACTIVE is None, "a tracer leaked into this test"
    yield
    leaked_metrics = metrics.ACTIVE is not None
    leaked_tracing = tracing.ACTIVE is not None
    metrics.uninstall()
    tracing.uninstall()
    assert not leaked_metrics, "test leaked an installed metrics registry"
    assert not leaked_tracing, "test leaked an installed tracer"


N_ITEMS = 4
SEED = 99


def make_workload():
    """The shared schema bootstrap: primary and replicas must agree."""
    workload = build_inventory(N_ITEMS, seed=SEED, explain=True)
    workload.activate()
    return workload


def bootstrap_factory():
    return make_workload().amos


@pytest.fixture
def primary(tmp_path):
    """A WAL-backed primary serving the inventory workload."""
    workload = make_workload()
    server = AmosServer(
        amos=workload.amos, wal_dir=str(tmp_path / "primary-wal")
    )
    server.start()
    server.workload = workload
    try:
        yield server
    finally:
        server.stop()
