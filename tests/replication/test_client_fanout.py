"""Client-side read fan-out: ``AmosClient(replicas=[...])``.

The scale-out read path: ``query_ro`` round-robins across replicas,
``min_epoch`` bounds staleness (read-your-writes through replicas),
unreachable replicas are skipped, and a total replica outage falls
back to the primary connection.
"""

import threading
import time

import pytest

from repro.errors import ReplicaLagError, ServerError
from repro.server.client import AmosClient

from .test_replica import converge, start_replica

QUERY = "select q for each item i, integer q where quantity(i) = q"


def fanout_client(primary, *replicas, **kwargs):
    client = AmosClient(
        *primary.address,
        replicas=[replica.address for replica in replicas],
        **kwargs,
    )
    client.connect()
    return client


def write(primary, client, index, quantity):
    client.bind(f"w{index}", primary.workload.items[index])
    client.execute(f"set quantity(:w{index}) = {quantity};")


class TestFanout:
    def test_round_robin_distributes_reads(self, primary, tmp_path):
        first = start_replica(primary, tmp_path, name="r1")
        second = start_replica(primary, tmp_path, name="r2")
        try:
            with fanout_client(primary, first, second) as client:
                write(primary, client, 0, 777)
                converge(first, primary)
                converge(second, primary)
                for _ in range(6):
                    assert (777,) in client.query_ro(QUERY)
            served_first = first.stats()["counters"]["server.query_ro"]
            served_second = second.stats()["counters"]["server.query_ro"]
            assert served_first + served_second == 6
            assert served_first == 3
            assert served_second == 3
            # the primary answered none of them
            assert (
                primary.stats()["counters"].get("server.query_ro", 0) == 0
            )
        finally:
            first.stop()
            second.stop()

    def test_min_epoch_gives_read_your_writes(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with fanout_client(primary, replica) as client:
                client.bind("w0", primary.workload.items[0])
                client.begin()
                client.execute("set quantity(:w0) = 4242;")
                client.commit()
                committed = client.last_commit_epoch
                assert committed is not None
                rows = client.query_ro(QUERY, min_epoch=committed)
                assert (4242,) in rows
                assert client.last_ro_epoch >= committed
        finally:
            replica.stop()

    def test_lag_error_carries_the_freshest_epoch_seen(
        self, primary, tmp_path
    ):
        replica = start_replica(primary, tmp_path)
        try:
            with fanout_client(primary, replica) as client:
                write(primary, client, 0, 100)
                converge(replica, primary)
                stale = replica.amos.storage.snapshot_epoch

                # park the apply loop: _apply_record runs under the
                # REPLICA's engine lock, which we now hold — yet the
                # replica keeps serving (stale) lock-free reads
                with replica._engine_lock:
                    write(primary, client, 0, 200)
                    target = primary.amos.storage.snapshot_epoch
                    assert target > stale
                    with pytest.raises(ReplicaLagError) as excinfo:
                        client.query_ro(
                            QUERY, min_epoch=target, freshness_timeout=0.3
                        )
                    assert excinfo.value.freshest_epoch == stale
                    # unbounded reads still answer, from the old epoch
                    assert (100,) in client.query_ro(QUERY)
                    assert client.last_ro_epoch == stale
                # released: the same read now gets fresh within bound
                rows = client.query_ro(QUERY, min_epoch=target)
                assert (200,) in rows
        finally:
            replica.stop()

    def test_failover_to_the_surviving_replica(self, primary, tmp_path):
        first = start_replica(primary, tmp_path, name="r1")
        second = start_replica(primary, tmp_path, name="r2")
        try:
            with fanout_client(primary, first, second) as client:
                write(primary, client, 0, 314)
                converge(first, primary)
                converge(second, primary)
                assert (314,) in client.query_ro(QUERY)
                first.stop()
                # every subsequent read lands on the survivor
                for _ in range(4):
                    assert (314,) in client.query_ro(QUERY)
                served = second.stats()["counters"]["server.query_ro"]
                assert served >= 4
        finally:
            first.stop()
            second.stop()

    def test_total_replica_outage_falls_back_to_the_primary(
        self, primary, tmp_path
    ):
        replica = start_replica(primary, tmp_path)
        with fanout_client(primary, replica) as client:
            write(primary, client, 0, 271)
            converge(replica, primary)
            replica.stop()
            rows = client.query_ro(QUERY)
            assert (271,) in rows
            assert client.last_ro_epoch == primary.amos.storage.snapshot_epoch
            assert primary.stats()["counters"]["server.query_ro"] >= 1

    def test_dead_replicas_and_no_primary_raise_server_error(
        self, primary, tmp_path
    ):
        replica = start_replica(primary, tmp_path)
        client = fanout_client(primary, replica, freshness_timeout=0.3)
        replica.stop()
        client._drop()  # primary connection gone too
        with pytest.raises(ServerError, match="no replica"):
            client.query_ro(QUERY)
        client.close()

    def test_pinned_epoch_waits_out_replica_lag(self, primary, tmp_path):
        """A pinned-epoch read for an epoch the replica has not applied
        yet retries (it is lag, not an error) until it is published."""
        replica = start_replica(primary, tmp_path)
        try:
            with fanout_client(primary, replica) as client:
                write(primary, client, 0, 111)
                converge(replica, primary)

                release = threading.Event()
                parked = threading.Event()

                def park():
                    with replica._engine_lock:
                        parked.set()
                        release.wait(10.0)

                blocker = threading.Thread(target=park, daemon=True)
                blocker.start()
                assert parked.wait(5.0)
                write(primary, client, 0, 222)
                pinned = primary.amos.storage.snapshot_epoch

                def unpark():
                    time.sleep(0.3)
                    release.set()

                threading.Thread(target=unpark, daemon=True).start()
                rows = client.query_ro(
                    QUERY, epoch=pinned, min_epoch=pinned,
                    freshness_timeout=10.0,
                )
                assert (222,) in rows
                assert client.last_ro_epoch == pinned
                blocker.join(timeout=5.0)
        finally:
            replica.stop()
