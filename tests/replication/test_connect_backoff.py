"""``AmosClient.connect()`` robustness (ISSUE 7 satellite).

A refused connection — a server still booting, the normal race in every
replica/benchmark startup — is retried with exponential backoff; any
other socket error fails fast.  Either way the error names the target.
"""

import socket
import threading
import time

import pytest

from repro.errors import ServerError
from repro.server import client as client_module
from repro.server import protocol
from repro.server.client import AmosClient


class TestBackoff:
    def refusing_client(self, monkeypatch, error, **kwargs):
        """A client whose dials always fail with ``error``; sleeps are
        recorded instead of slept."""
        calls = {"dials": 0}
        sleeps = []

        def refuse(address, timeout=None):
            calls["dials"] += 1
            raise error

        monkeypatch.setattr(
            client_module.socket, "create_connection", refuse
        )
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: sleeps.append(s)
        )
        client = AmosClient("198.51.100.7", 4900, **kwargs)
        return client, calls, sleeps

    def test_refused_connections_back_off_exponentially(self, monkeypatch):
        client, calls, sleeps = self.refusing_client(
            monkeypatch,
            ConnectionRefusedError(),
            connect_retries=6,
            retry_delay=0.01,
            retry_backoff=2.0,
            max_retry_delay=0.05,
        )
        with pytest.raises(ServerError) as excinfo:
            client.connect()
        assert calls["dials"] == 7  # initial try + 6 retries
        # doubling from 10ms, capped at 50ms; no sleep after the last try
        assert sleeps == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05]
        message = str(excinfo.value)
        assert "198.51.100.7:4900" in message
        assert "7 attempt(s)" in message

    def test_non_refused_errors_fail_fast(self, monkeypatch):
        client, calls, sleeps = self.refusing_client(
            monkeypatch,
            OSError("network unreachable"),
            connect_retries=6,
        )
        with pytest.raises(ServerError) as excinfo:
            client.connect()
        assert calls["dials"] == 1
        assert sleeps == []
        assert "198.51.100.7:4900" in str(excinfo.value)
        assert "network unreachable" in str(excinfo.value)

    def test_zero_retries_fails_on_the_first_refusal(self, monkeypatch):
        client, calls, sleeps = self.refusing_client(
            monkeypatch, ConnectionRefusedError(), connect_retries=0
        )
        with pytest.raises(ServerError, match="1 attempt"):
            client.connect()
        assert calls["dials"] == 1
        assert sleeps == []

    def test_connect_succeeds_once_the_server_appears(self):
        """Real sockets: dial a port nothing listens on yet, bring the
        listener up while the client is mid-backoff."""
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        host, port = placeholder.getsockname()[:2]
        placeholder.close()  # free the port; nothing listens now

        def late_server():
            time.sleep(0.2)
            listener = socket.socket()
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            listener.listen(1)
            conn, _ = listener.accept()
            protocol.write_frame(
                conn,
                {"ok": True, "event": "hello", "session": "s1", "version": 4},
            )
            conn.close()
            listener.close()

        thread = threading.Thread(target=late_server, daemon=True)
        thread.start()
        client = AmosClient(
            host, port, connect_retries=100, retry_delay=0.02
        )
        assert client.connect() == "s1"
        client._drop()
        thread.join(timeout=5.0)
