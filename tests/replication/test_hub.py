"""Wire-level tests of the replicate handshake and the push stream.

These speak the protocol with a raw socket — no ReplicaServer — to pin
the contract a third-party follower would code against: the handshake
ack (resume point negotiation, error shapes), WAL batches starting at
exactly the negotiated resume LSN, and heartbeats while idle.
"""

import socket

from repro.server import protocol
from repro.server.client import AmosClient


def dial(server):
    sock = socket.create_connection(server.address, timeout=10.0)
    sock.settimeout(10.0)
    hello = protocol.read_frame(sock, protocol.MAX_FRAME)
    assert hello["event"] == "hello"
    return sock


def commit_n(primary, n, start=200):
    with AmosClient(*primary.address) as client:
        client.bind("i0", primary.workload.items[0])
        for step in range(n):
            client.execute(f"set quantity(:i0) = {start + step};")


class TestHandshake:
    def test_fresh_follower_resumes_at_zero(self, primary):
        commit_n(primary, 3)
        sock = dial(primary)
        try:
            protocol.write_frame(
                sock, {"id": 1, "op": "replicate", "last_lsn": -1}
            )
            ack = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert ack["ok"] is True
            assert ack["event"] == "replicate"
            assert ack["resume_lsn"] == 0
            assert ack["next_lsn"] == primary.amos.wal.next_lsn
            assert ack["epoch"] == primary.amos.storage.snapshot_epoch
        finally:
            sock.close()

    def test_follower_ahead_of_primary_is_refused(self, primary):
        commit_n(primary, 1)
        sock = dial(primary)
        try:
            protocol.write_frame(
                sock, {"id": 1, "op": "replicate", "last_lsn": 10_000}
            )
            ack = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert ack["ok"] is False
            assert ack["error"]["type"] == "ReplicationError"
            assert "ahead of this primary" in ack["error"]["message"]
        finally:
            sock.close()

    def test_malformed_last_lsn_is_refused(self, primary):
        for bad in ("zero", -2, 1.5, None):
            sock = dial(primary)
            try:
                protocol.write_frame(
                    sock, {"id": 1, "op": "replicate", "last_lsn": bad}
                )
                ack = protocol.read_frame(sock, protocol.MAX_FRAME)
                assert ack["ok"] is False, bad
                assert ack["error"]["type"] == "ReplicationError"
            finally:
                sock.close()

    def test_replicate_on_wal_less_server_names_the_flag(self):
        from repro.server.server import AmosServer

        from .conftest import make_workload

        server = AmosServer(amos=make_workload().amos)
        server.start()
        try:
            sock = dial(server)
            try:
                protocol.write_frame(
                    sock, {"id": 1, "op": "replicate", "last_lsn": -1}
                )
                ack = protocol.read_frame(sock, protocol.MAX_FRAME)
                assert ack["ok"] is False
                assert "--wal-dir" in ack["error"]["message"]
            finally:
                sock.close()
        finally:
            server.stop()


class TestStream:
    def read_until(self, sock, event, limit=50):
        for _ in range(limit):
            frame = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert frame is not None
            if frame["event"] == event:
                return frame
        raise AssertionError(f"no {event!r} frame within {limit} frames")

    def test_wal_batches_start_at_the_negotiated_resume_point(self, primary):
        commit_n(primary, 4)
        sock = dial(primary)
        try:
            protocol.write_frame(
                sock, {"id": 1, "op": "replicate", "last_lsn": 1}
            )
            ack = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert ack["resume_lsn"] == 2
            frame = self.read_until(sock, "wal")
            lsns = [record["lsn"] for record in frame["records"]]
            assert lsns[0] == 2
            assert lsns == list(range(2, 2 + len(lsns)))
            assert frame["next_lsn"] == lsns[-1] + 1
        finally:
            sock.close()

    def test_live_appends_are_pushed(self, primary):
        sock = dial(primary)
        try:
            protocol.write_frame(
                sock, {"id": 1, "op": "replicate", "last_lsn": -1}
            )
            ack = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert ack["ok"] is True
            before = primary.amos.wal.next_lsn
            commit_n(primary, 2)
            seen = []
            while len(seen) < primary.amos.wal.next_lsn:
                frame = self.read_until(sock, "wal")
                seen.extend(record["lsn"] for record in frame["records"])
            assert seen == list(range(primary.amos.wal.next_lsn))
            assert before < len(seen)
        finally:
            sock.close()

    def test_heartbeats_flow_while_idle(self, primary):
        commit_n(primary, 1)
        primary.replication_hub.heartbeat_interval = 0.05
        sock = dial(primary)
        try:
            protocol.write_frame(
                sock, {"id": 1, "op": "replicate", "last_lsn": -1}
            )
            ack = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert ack["ok"] is True
            heartbeat = self.read_until(sock, "heartbeat")
            assert heartbeat["next_lsn"] == primary.amos.wal.next_lsn
            assert heartbeat["epoch"] == primary.amos.storage.snapshot_epoch
            # heartbeats keep coming
            again = self.read_until(sock, "heartbeat")
            assert again["next_lsn"] >= heartbeat["next_lsn"]
        finally:
            sock.close()

    def test_subscriber_appears_in_hub_listing_and_stats(self, primary):
        commit_n(primary, 1)
        assert primary.replication_hub.subscriber_count == 0
        sock = dial(primary)
        try:
            protocol.write_frame(
                sock, {"id": 1, "op": "replicate", "last_lsn": -1}
            )
            ack = protocol.read_frame(sock, protocol.MAX_FRAME)
            assert ack["ok"] is True
            self.read_until(sock, "wal")
            assert primary.replication_hub.subscriber_count == 1
            (info,) = primary.stats()["replication"]
            assert info["start_lsn"] == 0
            assert info["last_sent_lsn"] >= 0
            assert info["records"] >= 1
        finally:
            sock.close()
        # disconnect unregisters (the handler thread notices the close)
        import time

        deadline = time.monotonic() + 5.0
        while (
            primary.replication_hub.subscriber_count
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert primary.replication_hub.subscriber_count == 0
