"""Port hygiene across every socket-spawning suite (ISSUE 7 satellite).

Flaky CI follows from hardcoded listen ports: two test processes (or a
leaked server from an earlier failure) collide on bind.  The rule is
that every test server binds port 0 and reads the OS-assigned port back
from ``server.address``.  This meta-test audits the suites' sources so
a hardcoded port can't creep back in.
"""

import pathlib
import re

SUITES = ("tests/server", "tests/replication", "benchmarks")

#: ``port=<literal>`` with anything but 0 is a hardcoded listen port
HARDCODED_PORT = re.compile(r"\bport\s*=\s*(?!0\b)\d+")


def repo_root():
    return pathlib.Path(__file__).resolve().parents[2]


def test_no_suite_hardcodes_a_listen_port():
    offenders = []
    for suite in SUITES:
        directory = repo_root() / suite
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if HARDCODED_PORT.search(line):
                    offenders.append(f"{path}:{number}: {line.strip()}")
    assert not offenders, (
        "hardcoded listen ports (bind port 0 and read server.address "
        "instead):\n" + "\n".join(offenders)
    )
