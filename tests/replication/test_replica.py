"""End-to-end ReplicaServer tests (ISSUE 7 tentpole).

Every test spins a real WAL-backed primary and at least one replica on
loopback sockets and drives them through the public surfaces: AMOSQL
over :class:`AmosClient`, the ``replicate`` stream underneath, and
``query_ro`` reads on the replica.  The load-bearing properties:

* the replica converges to the primary's exact state AND exact epoch,
* every epoch both sides have published names identical bytes
  (rollback-churn epochs the primary mints locally leave gaps in the
  replica's epoch sequence — never divergent states),
* replica reads never touch the primary's engine lock,
* writes are refused with a redirect naming the primary.
"""

import threading
import time

import pytest

from repro.errors import RemoteError, ReplicationError
from repro.server.client import AmosClient
from repro.server.server import AmosServer
from repro.replication import ReplicaServer

from .conftest import bootstrap_factory

CONVERGE_TIMEOUT = 20.0


def start_replica(primary, tmp_path, name="replica", **kwargs):
    replica = ReplicaServer(
        primary=primary.address,
        factory=bootstrap_factory,
        wal_dir=str(tmp_path / f"{name}-wal"),
        **kwargs,
    )
    replica.start()
    return replica


def converge(replica, primary, timeout=CONVERGE_TIMEOUT):
    target = primary.amos.storage.snapshot_epoch
    assert replica.wait_for_epoch(target, timeout=timeout), (
        replica.apply_error,
        replica.last_stream_error,
        replica.lag_epochs,
    )


def primary_client(primary):
    client = AmosClient(*primary.address)
    client.connect()
    workload = primary.workload
    for index, item in enumerate(workload.items):
        client.bind(f"i{index}", item)
    return client


class TestConvergence:
    def test_replica_reaches_primary_state_and_epoch(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as client:
                for quantity in (120, 90, 5000, 135):
                    client.execute(f"set quantity(:i0) = {quantity};")
                client.execute("set quantity(:i1) = 110;")
            converge(replica, primary)
            assert (
                replica.amos.storage.snapshot_epoch
                == primary.amos.storage.snapshot_epoch
            )
            assert (
                replica.amos.snapshot_extensions()
                == primary.amos.snapshot_extensions()
            )
            # rule machinery replicated too: same monitor set, no
            # re-fired actions (orders came through the commit records)
            assert (
                replica.amos.storage.monitored_relations()
                == primary.amos.storage.monitored_relations()
            )
            assert (
                replica.amos.rules.active_rules()
                == primary.amos.rules.active_rules()
            )
        finally:
            replica.stop()

    def test_shared_epochs_name_identical_snapshots(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        replica.amos.storage.snapshot_history = 64
        primary.amos.storage.snapshot_history = 64
        try:
            with primary_client(primary) as client:
                for step in range(6):
                    client.execute(f"set quantity(:i2) = {150 + step};")
            converge(replica, primary)
            shared = set(primary.amos.storage.snapshot_epochs()) & set(
                replica.amos.storage.snapshot_epochs()
            )
            assert len(shared) >= 6
            for epoch in shared:
                on_primary = primary.amos.storage.snapshot_at(epoch)
                on_replica = replica.amos.storage.snapshot_at(epoch)
                names = set(on_primary.relation_names())
                assert names == set(on_replica.relation_names())
                for name in names:
                    assert on_primary.rows(name) == on_replica.rows(name), (
                        epoch,
                        name,
                    )
        finally:
            replica.stop()

    def test_rollback_churn_leaves_epoch_gaps_not_divergence(
        self, primary, tmp_path
    ):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as client:
                client.execute("set quantity(:i0) = 120;")
                # churn: an engine-level rollback publishes an epoch on
                # the primary (auto_publish) but appends nothing to the
                # WAL, so the replica never sees these epochs at all
                amos = primary.amos
                item = primary.workload.items[1]
                with primary._engine_lock:
                    for _ in range(3):
                        amos.begin()
                        amos.set_value("quantity", (item,), 1)
                        amos.rollback()
                client.execute("set quantity(:i0) = 5000;")
            converge(replica, primary)
            assert (
                replica.amos.storage.snapshot_epoch
                == primary.amos.storage.snapshot_epoch
            )
            assert (
                replica.amos.snapshot_extensions()
                == primary.amos.snapshot_extensions()
            )
            # the churn epochs are genuine gaps on the replica
            replicated = set(replica.amos.storage.snapshot_epochs())
            minted = set(primary.amos.storage.snapshot_epochs())
            assert replicated < minted
        finally:
            replica.stop()

    def test_group_commit_boundaries_replicate(self, tmp_path):
        from .conftest import make_workload

        workload = make_workload()
        primary = AmosServer(
            amos=workload.amos,
            wal_dir=str(tmp_path / "p-wal"),
            group_commit=True,
        )
        primary.start()
        primary.workload = workload
        replica = start_replica(primary, tmp_path)
        try:
            barrier = threading.Barrier(4)
            failures = []

            def writer(index, quantity):
                try:
                    with AmosClient(*primary.address) as client:
                        client.bind("it", workload.items[index])
                        barrier.wait(timeout=10.0)
                        for step in range(5):
                            client.execute(
                                f"set quantity(:it) = {quantity + step};"
                            )
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)

            threads = [
                threading.Thread(target=writer, args=(i, 120 + 40 * i))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not failures, failures
            converge(replica, primary)
            assert (
                replica.amos.snapshot_extensions()
                == primary.amos.snapshot_extensions()
            )
        finally:
            replica.stop()
            primary.stop()

    def test_rule_activation_changes_flow_through_the_stream(
        self, primary, tmp_path
    ):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as client:
                client.execute("set quantity(:i0) = 120;")
                converge(replica, primary)
                assert replica.amos.rules.is_active("monitor_items", ())

                with primary._engine_lock:
                    primary.amos.deactivate("monitor_items")
                client.execute("set quantity(:i1) = 120;")
                converge(replica, primary)
                assert not replica.amos.rules.is_active("monitor_items", ())
                assert (
                    replica.amos.storage.monitored_relations()
                    == primary.amos.storage.monitored_relations()
                )

                with primary._engine_lock:
                    primary.amos.activate("monitor_items")
                client.execute("set quantity(:i2) = 120;")
                converge(replica, primary)
                assert replica.amos.rules.is_active("monitor_items", ())
                assert (
                    replica.amos.snapshot_extensions()
                    == primary.amos.snapshot_extensions()
                )
        finally:
            replica.stop()


class TestReadPath:
    def test_query_ro_on_replica(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as client:
                client.execute("set quantity(:i0) = 777;")
            converge(replica, primary)
            with AmosClient(*replica.address) as reader:
                reader.bind("i0", primary.workload.items[0])
                rows = reader.query_ro("select quantity(:i0);")
                assert rows == [(777,)]
                assert (
                    reader.last_ro_epoch
                    == primary.amos.storage.snapshot_epoch
                )
                # epoch-pinned read resolves on the replica too
                pinned = reader.query_ro(
                    "select quantity(:i0);", epoch=reader.last_ro_epoch
                )
                assert pinned == [(777,)]
        finally:
            replica.stop()

    def test_replica_reads_never_take_the_primary_engine_lock(
        self, primary, tmp_path
    ):
        """ISSUE acceptance: hold the primary's engine lock — with a
        writer genuinely blocked mid-commit behind it — and a replica
        ``query_ro`` still completes."""
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as client:
                client.execute("set quantity(:i0) = 345;")
            converge(replica, primary)

            writer_done = threading.Event()

            def blocked_writer():
                with AmosClient(*primary.address) as client:
                    client.bind("i1", primary.workload.items[1])
                    client.execute("set quantity(:i1) = 99;")
                writer_done.set()

            assert primary._engine_lock.acquire(timeout=5.0)
            try:
                thread = threading.Thread(target=blocked_writer, daemon=True)
                thread.start()
                time.sleep(0.2)  # let the writer reach the lock
                assert not writer_done.is_set()

                with AmosClient(*replica.address, timeout=5.0) as reader:
                    reader.bind("i0", primary.workload.items[0])
                    start = time.monotonic()
                    rows = reader.query_ro("select quantity(:i0);")
                    elapsed = time.monotonic() - start
                assert rows == [(345,)]
                assert elapsed < 2.0
                # the primary-side writer is STILL stuck: the replica
                # read cannot have gone anywhere near that lock
                assert not writer_done.is_set()
            finally:
                primary._engine_lock.release()
            assert writer_done.wait(10.0)
            thread.join(timeout=10.0)
        finally:
            replica.stop()

    def test_writes_are_refused_with_a_redirect(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            host, port = primary.address
            with AmosClient(*replica.address) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.execute("set quantity(:i0) = 1;")
                assert excinfo.value.remote_type == "ReplicaReadOnlyError"
                assert f"{host}:{port}" in str(excinfo.value)
            assert (
                replica.stats()["counters"]["replica.refused_writes"] == 1
            )
        finally:
            replica.stop()

    def test_replicating_from_a_replica_is_refused(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            cascade = ReplicaServer(
                primary=replica.address,
                factory=bootstrap_factory,
                reconnect=False,
            )
            cascade.start()
            try:
                deadline = time.monotonic() + 10.0
                while (
                    cascade.last_stream_error is None
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                assert isinstance(cascade.last_stream_error, ReplicationError)
                assert "cascading" in str(cascade.last_stream_error)
            finally:
                cascade.stop()
        finally:
            replica.stop()


class TestStreamLifecycle:
    def test_restart_resumes_from_own_wal_copy(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        with primary_client(primary) as client:
            client.execute("set quantity(:i0) = 120;")
            client.execute("set quantity(:i1) = 130;")
            converge(replica, primary)
            applied_before = replica.last_applied_lsn
            replica.stop()

            # the replica is down; the primary keeps committing
            client.execute("set quantity(:i2) = 150;")
            client.execute("set quantity(:i0) = 5000;")

        restarted = start_replica(primary, tmp_path)  # same wal dir
        try:
            # recovery replayed the copy, the handshake resumed after it
            assert restarted.last_recovery.records == applied_before + 1
            converge(restarted, primary)
            assert (
                restarted.amos.snapshot_extensions()
                == primary.amos.snapshot_extensions()
            )
            assert (
                restarted.amos.storage.snapshot_epoch
                == primary.amos.storage.snapshot_epoch
            )
        finally:
            restarted.stop()

    def test_replica_survives_primary_restart(self, tmp_path):
        from .conftest import make_workload

        workload = make_workload()
        wal_dir = str(tmp_path / "p-wal")
        primary = AmosServer(amos=workload.amos, wal_dir=wal_dir)
        primary.start()
        primary.workload = workload
        host, port = primary.address
        replica = start_replica(
            primary, tmp_path, reconnect_delay=0.02
        )
        try:
            with AmosClient(host, port) as client:
                client.bind("i0", workload.items[0])
                client.execute("set quantity(:i0) = 120;")
            converge(replica, primary)
            primary.stop()

            # bring the primary back on the SAME port from its own WAL
            from repro.storage.wal import recover

            amos2 = recover(wal_dir, amos=make_workload().amos)
            primary2 = AmosServer(amos=amos2, host=host, port=port)
            primary2.start()
            try:
                with AmosClient(host, port, connect_retries=40) as client:
                    client.bind("i0", workload.items[0])
                    client.execute("set quantity(:i0) = 130;")
                converge(replica, primary2)
                assert (
                    replica.amos.snapshot_extensions()
                    == amos2.snapshot_extensions()
                )
            finally:
                primary2.stop()
        finally:
            replica.stop()
            # primary already stopped; stopping twice is harmless
            primary.stop()

    def test_lag_and_stream_metrics_surface(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as client:
                client.execute("set quantity(:i0) = 120;")
            converge(replica, primary)

            stats = replica.stats()
            info = stats["replica"]
            assert info["primary"] == list(primary.address)
            assert info["connected"] is True
            assert info["lag_epochs"] == 0
            assert info["epoch"] == primary.amos.storage.snapshot_epoch
            assert info["apply_error"] is None
            assert info["last_applied_lsn"] >= 0
            assert stats["counters"]["replica.applied_records"] >= 1
            assert stats["gauges"]["replica.lag_epochs"]["value"] == 0
            assert "replica.apply_ms" in stats["histograms"]
            assert stats["wal"] is not None

            pstats = primary.stats()
            subscribers = pstats["replication"]
            assert subscribers and len(subscribers) == 1
            assert pstats["counters"]["wal.ship.records"] >= 1
            assert pstats["counters"]["server.replicate_streams"] == 1
        finally:
            replica.stop()

    def test_replicate_without_wal_is_refused(self):
        from .conftest import make_workload

        workload = make_workload()
        server = AmosServer(amos=workload.amos)  # no wal_dir
        server.start()
        try:
            replica = ReplicaServer(
                primary=server.address,
                factory=bootstrap_factory,
                reconnect=False,
            )
            replica.start()
            try:
                deadline = time.monotonic() + 10.0
                while (
                    replica.last_stream_error is None
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                assert isinstance(replica.last_stream_error, ReplicationError)
                assert "write-ahead log" in str(replica.last_stream_error)
            finally:
                replica.stop()
        finally:
            server.stop()
