"""Kill the replica's apply loop at every fault point; restart; converge.

The apply discipline is log-then-apply: a record is appended to the
replica's own WAL copy BEFORE it is applied to the engine.  A crash at
any of the three :data:`REPLICA_FAULT_POINTS` therefore loses nothing:

* ``pre_log``   — the record is not durable on the replica; the resume
  handshake re-requests it from the primary.
* ``mid_apply`` — the record IS durable but was never applied; restart
  recovery replays it from the copy, then resumes after it.
* ``post_apply``— applied and durable; restart must not apply it twice.

The matrix also varies WHICH record dies (first, middle, last) via the
harness's ``after=`` counter.
"""

import time

import pytest

from repro.server.client import AmosClient
from repro.replication import REPLICA_FAULT_POINTS, ReplicaServer
from tests.fault.harness import FaultPoint, InjectedCrash

from .conftest import bootstrap_factory
from .test_replica import converge


def commit_quantities(primary, quantities):
    with AmosClient(*primary.address) as client:
        client.bind("i0", primary.workload.items[0])
        client.bind("i1", primary.workload.items[1])
        for index, quantity in enumerate(quantities):
            target = "i0" if index % 2 == 0 else "i1"
            client.execute(f"set quantity(:{target}) = {quantity};")


def crashed_replica(primary, tmp_path, point, after):
    """Run a replica armed to die at ``point`` until it does."""
    fault = FaultPoint(point=point, after=after)
    replica = ReplicaServer(
        primary=primary.address,
        factory=bootstrap_factory,
        wal_dir=str(tmp_path / "replica-wal"),
        fault_hook=fault,
        reconnect=False,
    )
    replica.start()
    try:
        deadline = time.monotonic() + 15.0
        while replica.apply_error is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert isinstance(replica.apply_error, InjectedCrash), (
            replica.apply_error,
            replica.last_stream_error,
        )
        assert fault.fired
        survived_lsn = replica.last_applied_lsn
    finally:
        replica.stop()
    return survived_lsn


@pytest.mark.parametrize("point", REPLICA_FAULT_POINTS)
@pytest.mark.parametrize("after", [0, 2, 5])
def test_crash_at_every_point_recovers_and_converges(
    primary, tmp_path, point, after
):
    commit_quantities(primary, [120, 130, 150, 90, 5000, 135])
    survived_lsn = crashed_replica(primary, tmp_path, point, after)

    # the primary moves on while the replica is down
    commit_quantities(primary, [111, 222])

    restarted = ReplicaServer(
        primary=primary.address,
        factory=bootstrap_factory,
        wal_dir=str(tmp_path / "replica-wal"),
    )
    restarted.start()
    try:
        converge(restarted, primary)
        assert (
            restarted.amos.snapshot_extensions()
            == primary.amos.snapshot_extensions()
        )
        assert (
            restarted.amos.storage.snapshot_epoch
            == primary.amos.storage.snapshot_epoch
        )
        # exactly-once overall: the stream LSNs are contiguous through
        # the crash (recovered records + streamed remainder, no dupes)
        assert restarted.next_lsn == primary.amos.wal.next_lsn
        assert restarted.last_recovery.records >= max(survived_lsn, 0)
    finally:
        restarted.stop()


def test_crash_counter_and_stats_surface_the_death(primary, tmp_path):
    commit_quantities(primary, [120])
    fault = FaultPoint(point="replica.apply.mid_apply")
    replica = ReplicaServer(
        primary=primary.address,
        factory=bootstrap_factory,
        wal_dir=str(tmp_path / "replica-wal"),
        fault_hook=fault,
        reconnect=False,
    )
    replica.start()
    try:
        deadline = time.monotonic() + 15.0
        while replica.apply_error is None and time.monotonic() < deadline:
            time.sleep(0.01)
        stats = replica.stats()
        assert stats["counters"]["replica.apply_crashes"] == 1
        assert stats["replica"]["apply_error"] is not None
        # waiters are told, not left hanging
        from repro.errors import ReplicationError

        with pytest.raises(ReplicationError, match="apply loop died"):
            replica.wait_for_epoch(10_000, timeout=5.0)
    finally:
        replica.stop()
