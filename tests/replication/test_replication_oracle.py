"""Property-based replica-equivalence oracle (ISSUE 7 tentpole).

The property: **every epoch the replica publishes names exactly the
state the primary published under that epoch** — and after convergence
the replica IS the primary (extensions, epoch, monitor set, active
rules).  Hypothesis drives a random interleaving of:

* committed transactions (single- and multi-update),
* group-commit batches (``apply_group`` merged check phases),
* rollback churn (epochs the primary mints that never reach the WAL —
  the replica's epoch sequence must simply skip them),
* rule deactivate/activate (rule records on the stream),
* replica kill + restart (resume from its own WAL copy).

Runs at ``ORACLE_EXAMPLES`` examples (default 10 locally — every
example boots two real servers — 200+ in CI, seed logged by pytest).
"""

import os

from hypothesis import given, settings, strategies as st

from repro.server.client import AmosClient
from repro.server.server import AmosServer
from repro.replication import ReplicaServer

from .conftest import N_ITEMS, bootstrap_factory, make_workload
from .test_replica import converge

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "10"))
HISTORY = 64  # keep every epoch addressable on both sides

# quantities straddle the rule threshold (140) so actions genuinely
# fire on the primary (and must NOT re-fire on the replica)
quantity_st = st.integers(100, 180)
index_st = st.integers(0, N_ITEMS - 1)

op_st = st.one_of(
    st.tuples(st.just("txn"), index_st, quantity_st),
    st.tuples(
        st.just("multi"),
        st.lists(st.tuples(index_st, quantity_st), min_size=2, max_size=3),
    ),
    st.tuples(
        st.just("group"),
        st.lists(st.tuples(index_st, quantity_st), min_size=2, max_size=3),
    ),
    st.tuples(st.just("churn"), index_st, quantity_st),
    st.tuples(st.just("rule"), st.booleans()),
    st.tuples(st.just("kill")),
)

ops_st = st.lists(op_st, min_size=1, max_size=12)


def fingerprint(snapshot):
    """snapshot_extensions()-compatible view of a historic snapshot."""
    return {
        name: sorted(repr(row) for row in snapshot.rows(name))
        for name in snapshot.relation_names()
    }


def apply_op(workload, op):
    """One oracle op on the primary engine; returns True if it can have
    published a WAL-visible epoch."""
    amos = workload.amos
    kind = op[0]
    if kind == "txn":
        _, index, quantity = op
        amos.begin()
        amos.set_value("quantity", (workload.items[index],), quantity)
        amos.commit()
    elif kind == "multi":
        amos.begin()
        for index, quantity in op[1]:
            amos.set_value("quantity", (workload.items[index],), quantity)
        amos.commit()
    elif kind == "group":

        def unit(index, quantity):
            def run():
                amos.set_value(
                    "quantity", (workload.items[index],), quantity
                )

            return run

        amos.apply_group([unit(i, q) for i, q in op[1]])
    elif kind == "churn":
        _, index, quantity = op
        amos.begin()
        amos.set_value("quantity", (workload.items[index],), quantity)
        amos.rollback()
        return False  # epoch minted (maybe), but nothing hits the WAL
    elif kind == "rule":
        active = amos.rules.is_active("monitor_items", ())
        if op[1] and not active:
            amos.activate("monitor_items")
        elif not op[1] and active:
            amos.deactivate("monitor_items")
    return True


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(ops=ops_st)
def test_replica_equals_primary_at_every_shared_epoch(tmp_path_factory, ops):
    tmp_path = tmp_path_factory.mktemp("oracle")
    workload = make_workload()
    workload.amos.storage.snapshot_history = HISTORY
    primary = AmosServer(
        amos=workload.amos, wal_dir=str(tmp_path / "primary-wal")
    )
    primary.start()
    primary.workload = workload
    replica_dir = str(tmp_path / "replica-wal")

    def fresh_replica():
        replica = ReplicaServer(
            primary=primary.address,
            factory=bootstrap_factory,
            wal_dir=replica_dir,
        )
        replica.amos.storage.snapshot_history = HISTORY
        replica.start()
        return replica

    replica = fresh_replica()
    published = {}  # epoch -> snapshot_extensions() on the primary
    try:
        for op in ops:
            if op[0] == "kill":
                replica.stop()
                replica = fresh_replica()
                continue
            # the engine lock stands in for the server's commit path:
            # same serialization, same auto_publish, same WAL listeners
            with primary._engine_lock:
                wal_visible = apply_op(workload, op)
                epoch = workload.amos.storage.snapshot_epoch
                if wal_visible:
                    published[epoch] = workload.amos.snapshot_extensions()
        # one final commit so convergence has a definite target even if
        # the tail of the sequence was pure churn
        with primary._engine_lock:
            apply_op(workload, ("txn", 0, 180))
            final_epoch = workload.amos.storage.snapshot_epoch
            published[final_epoch] = workload.amos.snapshot_extensions()

        converge(replica, primary)

        amos_r = replica.amos
        assert amos_r.storage.snapshot_epoch == final_epoch
        assert amos_r.snapshot_extensions() == published[final_epoch]
        assert (
            amos_r.storage.monitored_relations()
            == workload.amos.storage.monitored_relations()
        )
        assert (
            amos_r.rules.active_rules() == workload.amos.rules.active_rules()
        )

        # every epoch the replica ever published must be one the
        # primary published with a WAL-visible commit, bit-for-bit
        replica_epochs = [
            epoch for epoch in amos_r.storage.snapshot_epochs() if epoch > 1
        ]
        assert replica_epochs, "replica published no post-bootstrap epochs"
        for epoch in replica_epochs:
            assert epoch in published, (
                f"replica published epoch {epoch} the primary never "
                f"shipped (WAL-visible epochs: {sorted(published)})"
            )
            assert fingerprint(amos_r.storage.snapshot_at(epoch)) == (
                published[epoch]
            ), f"state divergence at shared epoch {epoch}"

        # the replica read path serves the converged state
        with AmosClient(*replica.address) as reader:
            rows = reader.query_ro(
                "select q for each item i, integer q where quantity(i) = q"
            )
            assert rows
            assert reader.last_ro_epoch == final_epoch
    finally:
        replica.stop()
        primary.stop()
