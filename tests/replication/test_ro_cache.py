"""The replica's epoch-keyed ``query_ro`` result cache.

A replica is a read-optimized node: a published epoch names one
immutable snapshot, so ``(script, epoch, session binds)`` fully
determines a read's bytes and caching them is sound by construction.
The properties under test:

* a hit returns byte-identical rows AND the same served epoch,
* an applied commit advances the epoch, which IS the invalidation —
  a reader can never see pre-commit rows after convergence,
* sessions with different bind environments never share entries,
* capacity is enforced (LRU), and ``ro_cache_size=0`` disables the
  cache entirely (the primary never has one).
"""

from repro.server.client import AmosClient

from .test_replica import converge, primary_client, start_replica

QUERY = "select q for each item i, integer q where quantity(i) = q"


def counter(replica, name):
    return replica.stats()["counters"].get(name, 0)


class TestHits:
    def test_hit_returns_identical_rows_and_epoch(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as writer:
                writer.execute("set quantity(:i0) = 123;")
            converge(replica, primary)
            with AmosClient(*replica.address) as reader:
                first = reader.query_ro(QUERY)
                first_epoch = reader.last_ro_epoch
                second = reader.query_ro(QUERY)
                assert second == first
                assert reader.last_ro_epoch == first_epoch
            assert counter(replica, "replica.cache_misses") == 1
            assert counter(replica, "replica.cache_hits") == 1
            assert replica.stats()["replica"]["ro_cache"]["size"] == 1
        finally:
            replica.stop()

    def test_two_sessions_share_the_cache(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            converge(replica, primary)
            with AmosClient(*replica.address) as one:
                one.query_ro(QUERY)
            with AmosClient(*replica.address) as two:
                two.query_ro(QUERY)
            assert counter(replica, "replica.cache_misses") == 1
            assert counter(replica, "replica.cache_hits") == 1
        finally:
            replica.stop()


class TestInvalidation:
    def test_applied_commit_invalidates_by_epoch(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as writer:
                writer.execute("set quantity(:i0) = 111;")
                converge(replica, primary)
                with AmosClient(*replica.address) as reader:
                    before = reader.query_ro(QUERY)
                    assert (111,) in before
                    writer.execute("set quantity(:i0) = 222;")
                    converge(replica, primary)
                    after = reader.query_ro(QUERY)
                    assert (222,) in after
                    assert (111,) not in after
            # three distinct epochs served -> three misses, no stale hit
            assert counter(replica, "replica.cache_hits") == 0
        finally:
            replica.stop()

    def test_epoch_pinned_reads_hit_their_own_entries(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path)
        try:
            with primary_client(primary) as writer:
                writer.execute("set quantity(:i0) = 111;")
            converge(replica, primary)
            with AmosClient(*replica.address) as reader:
                reader.query_ro(QUERY)
                pinned = reader.last_ro_epoch
                again = reader.query_ro(QUERY, epoch=pinned)
                assert (111,) in again
            assert counter(replica, "replica.cache_hits") == 1
        finally:
            replica.stop()


class TestBinds:
    def test_sessions_with_different_binds_do_not_share(
        self, primary, tmp_path
    ):
        items = primary.workload.items
        with primary_client(primary) as writer:
            writer.execute("set quantity(:i0) = 111;")
            writer.execute("set quantity(:i1) = 222;")
        replica = start_replica(primary, tmp_path)
        try:
            converge(replica, primary)
            query = "select q for each integer q where quantity(:x) = q"
            with AmosClient(*replica.address) as one:
                one.bind("x", items[0])
                assert one.query_ro(query) == [(111,)]
            with AmosClient(*replica.address) as two:
                two.bind("x", items[1])
                assert two.query_ro(query) == [(222,)]
            assert counter(replica, "replica.cache_misses") == 2
            assert counter(replica, "replica.cache_hits") == 0
        finally:
            replica.stop()


class TestCapacity:
    def test_lru_eviction_respects_capacity(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path, ro_cache_size=2)
        try:
            converge(replica, primary)
            with AmosClient(*replica.address) as reader:
                for name in ("quantity", "max_stock", "min_stock"):
                    reader.query_ro(
                        f"select q for each item i, integer q "
                        f"where {name}(i) = q"
                    )
            stats = replica.stats()["replica"]["ro_cache"]
            assert stats == {"size": 2, "capacity": 2}
        finally:
            replica.stop()

    def test_zero_capacity_disables_the_cache(self, primary, tmp_path):
        replica = start_replica(primary, tmp_path, ro_cache_size=0)
        try:
            converge(replica, primary)
            with AmosClient(*replica.address) as reader:
                first = reader.query_ro(QUERY)
                assert reader.query_ro(QUERY) == first
            counters = replica.stats()["counters"]
            assert "replica.cache_hits" not in counters
            assert "replica.cache_misses" not in counters
            assert replica.stats()["replica"]["ro_cache"]["capacity"] == 0
        finally:
            replica.stop()
