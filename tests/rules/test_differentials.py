"""Tests for partial differential generation — incl. the paper's worked examples."""

import pytest

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView, OldStateView
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.differentials import generate_differentials
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

P_CLAUSE = HornClause(
    PredLiteral("p", (X, Z)),
    [PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))],
)


def make_program():
    program = Program()
    program.declare_base("q", 2)
    program.declare_base("r", 2)
    program.declare_derived("p", 2)
    program.add_clause(P_CLAUSE)
    return program


def evaluate(differential, db, program, deltas):
    view = (
        NewStateView(db)
        if differential.state == "new"
        else OldStateView(db, deltas)
    )
    evaluator = Evaluator(program, view, deltas=deltas)
    return frozenset(evaluator.solve_clause(differential.clause))


class TestGeneration:
    def test_one_pair_per_occurrence(self):
        differentials = generate_differentials(
            "p", [P_CLAUSE], frozenset({"q", "r"})
        )
        labels = sorted(d.label() + d.output_sign for d in differentials)
        assert labels == ["Δp/Δ+q+", "Δp/Δ+r+", "Δp/Δ-q-", "Δp/Δ-r-"]

    def test_positive_only_mode(self):
        differentials = generate_differentials(
            "p", [P_CLAUSE], frozenset({"q", "r"}), negatives=False
        )
        assert all(d.input_sign == "+" for d in differentials)
        assert len(differentials) == 2

    def test_substitution_structure(self):
        """dP/d+q replaces exactly the q occurrence with a delta read."""
        differentials = generate_differentials("p", [P_CLAUSE], frozenset({"q"}))
        positive = next(d for d in differentials if d.input_sign == "+")
        delta_literals = [
            l for l in positive.clause.pred_literals() if l.delta is not None
        ]
        assert len(delta_literals) == 1
        assert delta_literals[0].pred == "q"
        assert delta_literals[0].delta == "+"
        # the r literal is untouched
        assert PredLiteral("r", (Y, Z)) in positive.clause.body

    def test_states(self):
        differentials = generate_differentials("p", [P_CLAUSE], frozenset({"q"}))
        assert {(d.input_sign, d.state) for d in differentials} == {
            ("+", "new"),
            ("-", "old"),
        }

    def test_self_join_gets_two_occurrences(self):
        clause = HornClause(
            PredLiteral("pp", (X, Z)),
            [PredLiteral("q", (X, Y)), PredLiteral("q", (Y, Z))],
        )
        differentials = generate_differentials("pp", [clause], frozenset({"q"}))
        positive = [d for d in differentials if d.input_sign == "+"]
        assert len(positive) == 2
        assert {d.occurrence for d in positive} == {0, 1}

    def test_only_listed_influents_get_differentials(self):
        differentials = generate_differentials("p", [P_CLAUSE], frozenset({"q"}))
        assert {d.influent for d in differentials} == {"q"}


class TestPaperSection43:
    """The positive-changes example: DB_old = q(1,1), r(1,2), r(2,3);
    transaction asserts q(1,2) and r(1,4)."""

    def setup_case(self):
        program = make_program()
        db = Database()
        db.create_relation("q", 2).bulk_insert([(1, 1), (1, 2)])
        db.create_relation("r", 2).bulk_insert([(1, 2), (1, 4), (2, 3)])
        deltas = {
            "q": DeltaSet({(1, 2)}, set()),
            "r": DeltaSet({(1, 4)}, set()),
        }
        return program, db, deltas

    def test_delta_p_via_q(self):
        program, db, deltas = self.setup_case()
        differentials = generate_differentials(
            "p", [P_CLAUSE], frozenset({"q", "r"})
        )
        via_q = next(
            d for d in differentials if d.influent == "q" and d.input_sign == "+"
        )
        assert evaluate(via_q, db, program, deltas) == {(1, 3)}

    def test_delta_p_via_r(self):
        program, db, deltas = self.setup_case()
        differentials = generate_differentials(
            "p", [P_CLAUSE], frozenset({"q", "r"})
        )
        via_r = next(
            d for d in differentials if d.influent == "r" and d.input_sign == "+"
        )
        assert evaluate(via_r, db, program, deltas) == {(1, 4)}

    def test_combined_delta_matches_paper(self):
        """joining with delta-union gives dp = <{(1,3),(1,4)}, {}>."""
        program, db, deltas = self.setup_case()
        differentials = generate_differentials(
            "p", [P_CLAUSE], frozenset({"q", "r"})
        )
        plus = set()
        for differential in differentials:
            if differential.input_sign == "+":
                plus |= evaluate(differential, db, program, deltas)
        assert plus == {(1, 3), (1, 4)}


class TestPaperSection44:
    """The deletions example: DB_old = q(1,1), r(1,2), r(2,3); transaction
    asserts q(1,2), r(1,4) and retracts r(1,2), r(2,3)."""

    def setup_case(self):
        program = make_program()
        db = Database()
        db.create_relation("q", 2).bulk_insert([(1, 1), (1, 2)])
        db.create_relation("r", 2).bulk_insert([(1, 4)])
        deltas = {
            "q": DeltaSet({(1, 2)}, set()),
            "r": DeltaSet({(1, 4)}, {(1, 2), (2, 3)}),
        }
        return program, db, deltas

    def differentials(self):
        return generate_differentials("p", [P_CLAUSE], frozenset({"q", "r"}))

    def pick(self, influent, sign):
        return next(
            d
            for d in self.differentials()
            if d.influent == influent and d.input_sign == sign
        )

    def test_positive_via_q_is_empty(self):
        """dp/d+q = <{},{}> — q(1,2) joins r(2,Z) but r(2,3) is retracted."""
        program, db, deltas = self.setup_case()
        assert evaluate(self.pick("q", "+"), db, program, deltas) == frozenset()

    def test_positive_via_r(self):
        program, db, deltas = self.setup_case()
        assert evaluate(self.pick("r", "+"), db, program, deltas) == {(1, 4)}

    def test_negative_via_r_uses_old_q(self):
        """dp/d-r = <{},{(1,2)}> — NOT {(1,2),(1,3)}: q_old lacks (1,2)."""
        program, db, deltas = self.setup_case()
        assert evaluate(self.pick("r", "-"), db, program, deltas) == {(1, 2)}

    def test_wrong_answer_without_logical_rollback(self):
        """Evaluating dp/d-r in the NEW state gives the paper's 'clearly
        wrong' result {(1,2),(1,3)} — q(1,2) is new and must not join."""
        program, db, deltas = self.setup_case()
        negative = self.pick("r", "-")
        evaluator = Evaluator(program, NewStateView(db), deltas=deltas)
        wrong = frozenset(evaluator.solve_clause(negative.clause))
        assert wrong == {(1, 2), (1, 3)}

    def test_net_delta_matches_paper(self):
        """dp = <{(1,4)}, {(1,2)}>."""
        program, db, deltas = self.setup_case()
        plus, minus = set(), set()
        for differential in self.differentials():
            rows = evaluate(differential, db, program, deltas)
            (plus if differential.output_sign == "+" else minus).update(rows)
        assert (plus - minus, minus - plus) == ({(1, 4)}, {(1, 2)})


class TestNegatedOccurrences:
    def test_signs_flip_under_negation(self):
        clause = HornClause(
            PredLiteral("p", (X,)),
            [PredLiteral("q", (X, X)), PredLiteral("r", (X, X), negated=True)],
        )
        differentials = generate_differentials(
            "p", [clause], frozenset({"q", "r"})
        )
        negated = [d for d in differentials if d.influent == "r"]
        assert {(d.input_sign, d.output_sign) for d in negated} == {
            ("-", "+"),  # r loses a tuple -> p may gain
            ("+", "-"),  # r gains a tuple -> p may lose
        }

    def test_guard_literal_added(self):
        clause = HornClause(
            PredLiteral("p", (X,)),
            [PredLiteral("q", (X, X)), PredLiteral("r", (X, X), negated=True)],
        )
        differentials = generate_differentials("p", [clause], frozenset({"r"}))
        for differential in differentials:
            negated_literals = [
                l for l in differential.clause.pred_literals() if l.negated
            ]
            assert [l.pred for l in negated_literals] == ["r"]
