"""Tests for the three monitoring engines and their agreement."""

import pytest

from repro.algebra.delta import DeltaSet
from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.engines import HybridEngine, IncrementalEngine, NaiveEngine
from repro.storage.database import Database

X, Y = Variable("X"), Variable("Y")


def make_setup():
    db = Database()
    db.create_relation("value", 2)
    program = Program()
    program.declare_base("value", 2)
    program.declare_derived("low", 1)
    program.add_clause(HornClause(
        PredLiteral("low", (X,)),
        [PredLiteral("value", (X, Y)), Comparison("<", Y, 10)],
    ))
    conditions = {"low": frozenset({"value"})}
    return db, program, conditions


def apply_and_delta(db, plus=(), minus=()):
    for row in minus:
        db.relation("value").delete(row)
    for row in plus:
        db.relation("value").insert(row)
    return {"value": DeltaSet(frozenset(plus), frozenset(minus))}


class TestIncrementalEngine:
    def test_process(self):
        db, program, conditions = make_setup()
        engine = IncrementalEngine(db, program)
        engine.rebuild(conditions)
        deltas = apply_and_delta(db, plus=[("a", 5)])
        assert engine.process(deltas) == {"low": DeltaSet({("a",)}, set())}

    def test_trace_available(self):
        db, program, conditions = make_setup()
        engine = IncrementalEngine(db, program)
        engine.rebuild(conditions)
        deltas = apply_and_delta(db, plus=[("a", 5)])
        engine.process(deltas, trace=True)
        assert engine.last_trace is not None
        assert engine.last_trace.executed_labels() == ["Δlow/Δ+value"]

    def test_rebuild_replaces_network(self):
        db, program, conditions = make_setup()
        engine = IncrementalEngine(db, program)
        engine.rebuild(conditions)
        engine.rebuild({})
        deltas = apply_and_delta(db, plus=[("a", 5)])
        assert engine.process(deltas) == {}


class TestNaiveEngine:
    def test_process_diffs_against_materialized_previous(self):
        db, program, conditions = make_setup()
        db.relation("value").insert(("old", 1))
        engine = NaiveEngine(db, program)
        engine.rebuild(conditions)  # previous = {old}
        deltas = apply_and_delta(db, plus=[("a", 5)], minus=[("old", 1)])
        result = engine.process(deltas)
        assert result == {"low": DeltaSet({("a",)}, {("old",)})}

    def test_untouched_condition_not_recomputed(self):
        db, program, conditions = make_setup()
        db.create_relation("other", 1)
        engine = NaiveEngine(db, program)
        engine.rebuild(conditions)
        db.relation("other").insert((1,))
        result = engine.process({"other": DeltaSet({(1,)}, set())})
        assert result == {}

    def test_no_change_yields_nothing(self):
        db, program, conditions = make_setup()
        engine = NaiveEngine(db, program)
        engine.rebuild(conditions)
        deltas = apply_and_delta(db, plus=[("a", 99)])  # not low
        assert engine.process(deltas) == {}

    def test_resync_with_pending_deltas_restores_old_view(self):
        db, program, conditions = make_setup()
        engine = NaiveEngine(db, program)
        engine.rebuild(conditions)
        # simulate: a transaction inserted ("a",5) and the engine state
        # got stale; resync must rebuild previous WITHOUT ("a",5)
        deltas = apply_and_delta(db, plus=[("a", 5)])
        engine.resync(deltas)
        assert engine.process(deltas) == {"low": DeltaSet({("a",)}, set())}


class TestHybridEngine:
    def test_small_delta_goes_incremental(self):
        db, program, conditions = make_setup()
        db.relation("value").bulk_insert([(f"k{i}", 100 + i) for i in range(50)])
        engine = HybridEngine(db, program, switch_ratio=0.2)
        engine.rebuild(conditions)
        deltas = apply_and_delta(db, plus=[("a", 5)])
        result = engine.process(deltas)
        assert engine.last_decisions == {"low": "incremental"}
        assert result == {"low": DeltaSet({("a",)}, set())}

    def test_massive_delta_goes_naive(self):
        db, program, conditions = make_setup()
        db.relation("value").bulk_insert([(f"k{i}", 100 + i) for i in range(10)])
        engine = HybridEngine(db, program, switch_ratio=0.2)
        engine.rebuild(conditions)
        plus = [(f"n{i}", 5) for i in range(10)]
        deltas = apply_and_delta(db, plus=plus)
        result = engine.process(deltas)
        assert engine.last_decisions == {"low": "naive"}
        assert result["low"].plus == {(f"n{i}",) for i in range(10)}

    def test_hybrid_agrees_with_incremental_either_way(self):
        for ratio in (0.0, 100.0):  # force naive / force incremental
            db, program, conditions = make_setup()
            db.relation("value").bulk_insert([("x", 3), ("y", 50)])
            engine = HybridEngine(db, program, switch_ratio=ratio)
            engine.rebuild(conditions)
            deltas = apply_and_delta(db, plus=[("z", 4)], minus=[("x", 3)])
            result = engine.process(deltas)
            assert result == {"low": DeltaSet({("z",)}, {("x",)})}, ratio


class TestEngineAgreement:
    @pytest.mark.parametrize("step", range(5))
    def test_all_three_engines_agree(self, step):
        """Randomized-ish update batches give identical condition deltas."""
        import random

        rng = random.Random(step)
        base = [(f"k{i}", rng.randrange(0, 20)) for i in range(10)]
        plus = [(f"p{step}{i}", rng.randrange(0, 20)) for i in range(3)]
        minus = [base[rng.randrange(0, len(base))]]

        def fresh(engine_cls, **kw):
            db, program, conditions = make_setup()
            db.relation("value").bulk_insert(base)
            engine = engine_cls(db, program, **kw)
            engine.rebuild(conditions)
            deltas = apply_and_delta(db, plus=plus, minus=minus)
            return engine.process(deltas)

        results = [
            fresh(IncrementalEngine),
            fresh(NaiveEngine),
            fresh(HybridEngine, switch_ratio=0.2),
        ]
        assert results[0] == results[1] == results[2]
