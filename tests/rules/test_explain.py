"""Tests for the explainability machinery (check-phase reports)."""

import pytest

from tests.conftest import make_inventory_engine


@pytest.fixture
def engine_orders():
    engine, orders = make_inventory_engine(explain=True)
    engine.execute("activate monitor_items();")
    return engine, orders


class TestCheckPhaseReport:
    def test_report_present_after_commit(self, engine_orders):
        engine, _ = engine_orders
        engine.execute("set quantity(:item1) = 120;")
        report = engine.amos.rules.last_report
        assert report is not None
        assert len(report.iterations) >= 1

    def test_executed_differentials_listed(self, engine_orders):
        engine, _ = engine_orders
        engine.execute("set quantity(:item1) = 120;")
        labels = engine.amos.rules.last_report.executed_differentials()
        assert "Δcnd_monitor_items/Δ+quantity" in labels
        # only quantity changed: no other influent's differential ran
        assert all("quantity" in label for label in labels)

    def test_fired_rule_with_causes(self, engine_orders):
        engine, orders = engine_orders
        engine.execute("set quantity(:item1) = 120;")
        report = engine.amos.rules.last_report
        fired = report.fired_rules()
        assert len(fired) == 1
        assert fired[0].rule == "monitor_items"
        row = next(iter(fired[0].rows))
        assert fired[0].influents_for(row) == {"quantity"}
        assert fired[0].signs_for(row) == {"+"}
        assert report.causes_of("monitor_items", row) == {"quantity"}

    def test_different_influent_attributed(self, engine_orders):
        engine, _ = engine_orders
        # raising min_stock pushes the threshold above the quantity
        engine.execute("set quantity(:item1) = 150;")
        engine.execute("set min_stock(:item1) = 200;")
        report = engine.amos.rules.last_report
        fired = report.fired_rules()
        assert len(fired) == 1
        row = next(iter(fired[0].rows))
        assert fired[0].influents_for(row) == {"min_stock"}

    def test_quiet_transaction_produces_empty_report(self, engine_orders):
        engine, _ = engine_orders
        engine.execute("set max_stock(:item1) = 5000;")  # no-op value
        report = engine.amos.rules.last_report
        assert report.fired_rules() == []

    def test_summary_is_readable(self, engine_orders):
        engine, _ = engine_orders
        engine.execute("set quantity(:item1) = 120;")
        summary = engine.amos.rules.last_report.summary()
        assert "quantity" in summary
        assert "fired monitor_items" in summary

    def test_causes_of_unknown_row_is_empty(self, engine_orders):
        engine, _ = engine_orders
        engine.execute("set quantity(:item1) = 120;")
        report = engine.amos.rules.last_report
        assert report.causes_of("monitor_items", ("nonsense",)) == frozenset()

    def test_no_report_without_explain_flag(self):
        engine, _ = make_inventory_engine(explain=False)
        engine.execute("activate monitor_items();")
        engine.execute("set quantity(:item1) = 120;")
        assert engine.amos.rules.last_report is None
