"""Tests for budgeted higher-order deltas (repro.rules.differentials).

The second-order differential memoizes ``delta row -> head rows`` per
hot edge, validated by a version snapshot of the support relations.
Covered here: eligibility (who gets a memo and who must not), the memo
economy (hits, misses, wholesale invalidation, LRU budget), unification
short-circuits, and end-to-end equivalence under churn against an
engine with higher-order disabled.
"""

import pytest

from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import NewStateView
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.obs import metrics
from repro.rules import differentials as diff_mod
from repro.rules.differentials import (
    HO_BUDGET,
    generate_differentials,
    maybe_higher_order,
)
from repro.rules.network import PropagationNetwork
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def make_program(extra=()):
    program = Program()
    for name in ("e1", "e2", "e3"):
        program.declare_base(name, 2)
    for declare in extra:
        declare(program)
    return program


def triangle_differentials(program, negatives=True):
    clause = HornClause(
        PredLiteral("tri", (X, Y, Z)),
        [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("e3", (X, Z)),
        ],
    )
    return generate_differentials(
        "tri", [clause], frozenset(("e1", "e2", "e3")), negatives=negatives
    )


def optimized_network(program, body, name="cond", **options):
    program.declare_derived(name, 3)
    program.add_clause(HornClause(PredLiteral(name, (X, Y, Z)), list(body)))
    network = PropagationNetwork(program, **options)
    network.add_condition(name)
    return network


def ho_for(network, influent, sign="+"):
    for edge in network.edges():
        for d in edge.differentials():
            if d.influent == influent and d.input_sign == sign and d.state == "new":
                return d
    raise AssertionError(f"no +new differential for {influent}")


TRIANGLE = [
    PredLiteral("e1", (X, Y)),
    PredLiteral("e2", (Y, Z)),
    PredLiteral("e3", (X, Z)),
]


class TestEligibility:
    def test_new_state_triangle_edges_qualify(self):
        network = optimized_network(make_program(), TRIANGLE)
        for influent in ("e1", "e2", "e3"):
            d = ho_for(network, influent)
            assert d.ho is not None
            assert influent not in d.ho.support

    def test_old_state_differentials_never_memoize(self):
        network = optimized_network(make_program(), TRIANGLE)
        for edge in network.edges():
            for d in edge.differentials():
                if d.state == "old":
                    assert d.ho is None

    def test_self_join_influent_in_support_ineligible(self):
        """Every occurrence of a self-joined relation re-reads it: the
        memo would invalidate on each wave, so no memo is built."""
        program = Program()
        program.declare_base("e", 2)
        body = [
            PredLiteral("e", (X, Y)),
            PredLiteral("e", (Y, Z)),
            PredLiteral("e", (X, Z)),
        ]
        program.declare_derived("cond", 3)
        program.add_clause(HornClause(PredLiteral("cond", (X, Y, Z)), body))
        network = PropagationNetwork(program)
        network.add_condition("cond")
        for edge in network.edges():
            for d in edge.differentials():
                assert d.ho is None

    def test_foreign_support_ineligible(self):
        def declare(program):
            program.declare_foreign("f", 2, 1, lambda x: [(x,)])

        program = make_program((declare,))
        body = [
            PredLiteral("e1", (X, Y)),
            PredLiteral("e2", (Y, Z)),
            PredLiteral("f", (Z, X)),
        ]
        network = optimized_network(program, body)
        for influent in ("e1", "e2"):
            assert ho_for(network, influent).ho is None

    def test_pure_selection_ineligible(self):
        """A single-literal body has an empty residual: nothing to
        memoize (the delta rows themselves are the answer)."""
        program = Program()
        program.declare_base("e1", 2)
        for d in generate_differentials(
            "sel",
            [HornClause(
                PredLiteral("sel", (X, Y)),
                [PredLiteral("e1", (X, Y)), Comparison("<", Y, 5)],
            )],
            frozenset(("e1",)),
        ):
            assert maybe_higher_order(d, program) is None

    def test_network_flag_disables_higher_order(self):
        network = optimized_network(
            make_program(), TRIANGLE, higher_order=False
        )
        for edge in network.edges():
            for d in edge.differentials():
                assert d.ho is None


class TriangleFixture:
    def setup_method(self):
        self.db = Database()
        self.program = make_program()
        for name in ("e1", "e2", "e3"):
            self.db.create_relation(name, 2)
        self.db.relation("e2").bulk_insert([(1, 2), (1, 3), (5, 6)])
        self.db.relation("e3").bulk_insert([(0, 2), (0, 3)])
        self.network = optimized_network(self.program, TRIANGLE)
        self.ho = ho_for(self.network, "e1").ho
        assert self.ho is not None

    def evaluator(self):
        return Evaluator(self.program, NewStateView(self.db))


class TestMemoEconomy(TriangleFixture):
    def test_miss_then_hit(self):
        with metrics.collecting() as reg:
            first = self.ho.rows(self.evaluator(), [(0, 1)])
            second = self.ho.rows(self.evaluator(), [(0, 1)])
        assert first == second == frozenset({(0, 1, 2), (0, 1, 3)})
        counters = reg.counters()
        assert counters["join.ho_misses"] == 1
        assert counters["join.ho_hits"] == 1

    def test_batched_misses_run_one_plan_execution(self):
        with metrics.collecting() as reg:
            out = self.ho.rows(self.evaluator(), [(0, 1), (4, 5), (9, 9)])
        assert out == frozenset({(0, 1, 2), (0, 1, 3)})
        assert reg.counters()["evaluate.batch_runs"] == 1
        assert reg.counters()["join.ho_misses"] == 3

    def test_support_change_invalidates_wholesale(self):
        evaluator = self.evaluator()
        assert self.ho.rows(evaluator, [(0, 1)])
        self.db.relation("e2").insert((1, 7))
        self.db.relation("e3").insert((0, 7))
        with metrics.collecting() as reg:
            out = self.ho.rows(self.evaluator(), [(0, 1)])
        assert out == frozenset({(0, 1, 2), (0, 1, 3), (0, 1, 7)})
        counters = reg.counters()
        assert counters["join.ho_invalidations"] == 1
        assert counters["join.ho_misses"] == 1
        assert "join.ho_hits" not in counters

    def test_non_support_change_keeps_memo(self):
        evaluator = self.evaluator()
        self.ho.rows(evaluator, [(0, 1)])
        # e1 is the influent, not support: its churn must NOT invalidate
        self.db.relation("e1").insert((8, 8))
        with metrics.collecting() as reg:
            self.ho.rows(self.evaluator(), [(0, 1)])
        assert reg.counters()["join.ho_hits"] == 1
        assert "join.ho_invalidations" not in reg.counters()

    def test_budget_evicts_lru(self, monkeypatch):
        monkeypatch.setattr(diff_mod, "HO_BUDGET", 4)
        evaluator = self.evaluator()
        with metrics.collecting() as reg:
            for k in range(6):
                self.ho.rows(evaluator, [(k, k + 100)])
        assert len(self.ho._memo) == 4
        assert reg.counters()["join.ho_evictions"] == 2
        assert (0, 100) not in self.ho._memo
        assert HO_BUDGET > 4  # the real budget is untouched

    def test_probation_retires_cold_memo(self, monkeypatch):
        """An edge whose delta rows never repeat pays pure memo
        bookkeeping — after the probation window with a near-zero hit
        rate the memo retires and the dispatcher's worthwhile() gate
        routes the edge back to its ordinary plan."""
        monkeypatch.setattr(diff_mod, "HO_PROBATION", 8)
        evaluator = self.evaluator()
        for k in range(8):  # 8 lookups, all misses
            assert self.ho.worthwhile()
            self.ho.rows(evaluator, [(k, k + 100)])
        with metrics.collecting() as reg:
            assert not self.ho.worthwhile()
        assert self.ho.dead
        assert len(self.ho._memo) == 0
        assert reg.counters()["join.ho_disabled"] == 1
        # retirement is permanent and the counter fires once
        with metrics.collecting() as reg:
            assert not self.ho.worthwhile()
        assert "join.ho_disabled" not in reg.counters()

    def test_probation_spares_hot_memo(self, monkeypatch):
        """Hits above the 1/HO_DISABLE_FACTOR floor keep the memo."""
        monkeypatch.setattr(diff_mod, "HO_PROBATION", 8)
        evaluator = self.evaluator()
        for _ in range(10):  # one miss, then nine hits
            self.ho.rows(evaluator, [(0, 1)])
        assert self.ho.worthwhile()
        assert not self.ho.dead

    def test_non_unifying_rows_memoized_empty(self):
        """A delta row failing the occurrence's argument pattern is a
        definitive empty result — memoized without running the plan."""
        program = Program()
        program.declare_base("e1", 2)
        program.declare_base("e2", 2)
        body = [PredLiteral("e1", (X, X)), PredLiteral("e2", (X, Y))]
        program.declare_derived("c", 2)
        program.add_clause(HornClause(PredLiteral("c", (X, Y)), body))
        network = PropagationNetwork(program)
        network.add_condition("c")
        ho = ho_for(network, "e1").ho
        assert ho is not None
        db = Database()
        db.create_relation("e1", 2)
        db.create_relation("e2", 2).bulk_insert([(3, 4)])
        evaluator = Evaluator(program, NewStateView(db))
        with metrics.collecting() as reg:
            out = ho.rows(evaluator, [(1, 2), (3, 3)])
        assert out == frozenset({(3, 4)})
        assert "evaluate.batch_runs" in reg.counters()
        assert ho._memo[(1, 2)] == frozenset()


class TestChurnEquivalence:
    """End to end: an engine with memos under churn produces exactly
    the condition deltas of an engine without them."""

    def build(self, higher_order):
        from repro.rules.engines import IncrementalEngine

        db = Database()
        program = make_program()
        for name in ("e1", "e2", "e3"):
            db.create_relation(name, 2)
        db.relation("e2").bulk_insert([(y, y + 1) for y in range(6)])
        db.relation("e3").bulk_insert([(x, z) for x in range(6) for z in range(6)])
        program.declare_derived("tri", 3)
        program.add_clause(HornClause(PredLiteral("tri", (X, Y, Z)), TRIANGLE))
        engine = IncrementalEngine(db, program, higher_order=higher_order)
        engine.rebuild({"tri": frozenset(("e1", "e2", "e3"))})
        return db, engine

    def test_oscillating_updates_match(self):
        db_a, engine_a = self.build(higher_order=True)
        db_b, engine_b = self.build(higher_order=False)
        rows = [(0, 1), (2, 3), (4, 5)]
        script = []
        for _ in range(3):  # churn: same rows in and out, wave after wave
            script.append({"e1": DeltaSet(plus=rows)})
            script.append({"e1": DeltaSet(minus=rows)})
        with metrics.collecting() as reg:
            for deltas in script:
                for db in (db_a, db_b):
                    relation = db.relation("e1")
                    for row in deltas["e1"].plus:
                        relation.insert(row)
                    for row in deltas["e1"].minus:
                        relation.delete(row)
                got_a = engine_a.process(deltas)
                got_b = engine_b.process(deltas)
                assert got_a == got_b
        # the memo must actually have been exercised by the churn
        assert reg.counters().get("join.ho_hits", 0) > 0
