"""Tests for the rule manager: activation, check phase, semantics, firing."""

import pytest

from repro.errors import RuleActivationError, RuleError, UnknownRuleError
from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.manager import RuleManager
from repro.rules.rule import Activation, Rule, default_conflict_resolver
from repro.storage.database import Database

X, Y = Variable("X"), Variable("Y")


def make_db(mode="incremental", **options):
    """value(X,V) base relation; condition low(X) <- value(X,V), V < 10."""
    db = Database()
    db.create_relation("value", 2)
    program = Program()
    program.declare_base("value", 2)
    program.declare_derived("low", 1)
    program.add_clause(HornClause(
        PredLiteral("low", (X,)),
        [PredLiteral("value", (X, Y)), Comparison("<", Y, 10)],
    ))
    manager = RuleManager(db, program, mode=mode, **options)
    return db, program, manager


def set_value(db, key, value):
    """Mimic a stored-function update: replace the tuple for key."""
    with db._implicit_transaction():
        for row in db.relation("value").lookup((0,), (key,)):
            db.delete("value", row)
        db.insert("value", (key, value))


class TestRegistry:
    def test_create_and_fetch(self):
        _, _, manager = make_db()
        rule = manager.create_rule(Rule("r", "low", lambda row: None))
        assert manager.rule("r") is rule

    def test_duplicate_rule_rejected(self):
        _, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None))
        with pytest.raises(RuleError):
            manager.create_rule(Rule("r", "low", lambda row: None))

    def test_unknown_rule(self):
        _, _, manager = make_db()
        with pytest.raises(UnknownRuleError):
            manager.rule("ghost")
        with pytest.raises(UnknownRuleError):
            manager.activate("ghost")

    def test_unknown_condition_rejected(self):
        _, _, manager = make_db()
        with pytest.raises(Exception):
            manager.create_rule(Rule("r", "ghost_condition", lambda row: None))

    def test_drop_rule_deactivates(self):
        db, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None))
        manager.activate("r")
        manager.drop_rule("r")
        assert not manager.active_rules()
        assert manager.monitored_relations() == frozenset()


class TestActivation:
    def test_activation_monitors_influents(self):
        db, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None))
        assert not db.is_monitored("value")
        manager.activate("r")
        assert db.is_monitored("value")
        manager.deactivate("r")
        assert not db.is_monitored("value")

    def test_double_activation_rejected(self):
        _, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None))
        manager.activate("r")
        with pytest.raises(RuleActivationError):
            manager.activate("r")

    def test_deactivate_inactive_rejected(self):
        _, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None))
        with pytest.raises(RuleActivationError):
            manager.deactivate("r")

    def test_no_overhead_when_inactive(self):
        db, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None))
        set_value(db, "a", 1)  # no rule active: no deltas, no firing
        assert db.peek_deltas() == {}


class TestFiring:
    def test_fires_on_transition_to_true(self):
        db, _, manager = make_db()
        fired = []
        manager.create_rule(Rule("r", "low", fired.append))
        manager.activate("r")
        set_value(db, "a", 5)
        assert fired == [("a",)]

    def test_strict_does_not_refire_while_true(self):
        db, _, manager = make_db()
        fired = []
        manager.create_rule(Rule("r", "low", fired.append))
        manager.activate("r")
        set_value(db, "a", 5)
        set_value(db, "a", 6)  # still low
        assert fired == [("a",)]
        set_value(db, "a", 50)  # leaves
        set_value(db, "a", 3)  # re-enters
        assert fired == [("a",), ("a",)]

    def test_nervous_refires_on_reconfirming_update(self):
        db, _, manager = make_db()
        fired = []
        manager.create_rule(Rule("r", "low", fired.append, semantics="nervous"))
        manager.activate("r")
        set_value(db, "a", 5)
        set_value(db, "a", 6)
        assert fired == [("a",), ("a",)]

    def test_net_change_within_transaction_cancels(self):
        db, _, manager = make_db()
        fired = []
        manager.create_rule(Rule("r", "low", fired.append))
        manager.activate("r")
        db.begin()
        set_value(db, "a", 5)
        set_value(db, "a", 50)
        db.commit()
        assert fired == []

    def test_set_oriented_action_mode(self):
        db, _, manager = make_db()
        batches = []
        manager.create_rule(
            Rule("r", "low", batches.append, action_mode="set")
        )
        manager.activate("r")
        db.begin()
        set_value(db, "a", 1)
        set_value(db, "b", 2)
        db.commit()
        assert batches == [frozenset({("a",), ("b",)})]

    def test_parameterized_activation_filters_rows(self):
        db, _, manager = make_db()
        fired = []
        manager.create_rule(Rule("r", "low", fired.append, n_params=1))
        manager.activate("r", ("a",))
        set_value(db, "a", 1)
        set_value(db, "b", 1)
        assert fired == [("a",)]

    def test_rule_params_arity_checked(self):
        _, _, manager = make_db()
        manager.create_rule(Rule("r", "low", lambda row: None, n_params=1))
        with pytest.raises(RuleError):
            manager.activate("r", ())


class TestCascadingActions:
    def test_action_updates_retrigger_other_rules(self):
        db, program, manager = make_db()
        program.declare_derived("negative", 1)
        program.add_clause(HornClause(
            PredLiteral("negative", (X,)),
            [PredLiteral("value", (X, Y)), Comparison("<", Y, 0)],
        ))
        log = []

        def sink(row):
            log.append(("low", row))
            set_value(db, row[0], -1)  # drives `negative` true

        manager.create_rule(Rule("to_negative", "low", sink))
        manager.create_rule(
            Rule("catch_negative", "negative", lambda row: log.append(("neg", row)))
        )
        manager.activate("to_negative")
        manager.activate("catch_negative")
        set_value(db, "a", 5)
        assert log == [("low", ("a",)), ("neg", ("a",))]

    def test_runaway_rules_detected(self):
        db, _, manager = make_db(max_iterations=10)
        counter = [0]

        def flip(row):
            counter[0] += 1
            # keep confirming the condition; nervous semantics refires
            # forever (strict would stop: no false->true transition)
            set_value(db, "a", counter[0] % 9)

        manager.create_rule(Rule("loop", "low", flip, semantics="nervous"))
        manager.activate("loop")
        with pytest.raises(RuleError):
            set_value(db, "a", 5)
        # the failed transaction must have been rolled back
        assert db.relation("value").lookup((0,), ("a",)) == frozenset()


class TestConflictResolution:
    def test_priority_order(self):
        db, _, manager = make_db()
        order = []
        manager.create_rule(
            Rule("lowpri", "low", lambda row: order.append("lowpri"), priority=1)
        )
        manager.create_rule(
            Rule("highpri", "low", lambda row: order.append("highpri"), priority=9)
        )
        manager.activate("lowpri")
        manager.activate("highpri")
        set_value(db, "a", 1)
        assert order == ["highpri", "lowpri"]

    def test_tie_broken_by_activation_order(self):
        db, _, manager = make_db()
        order = []
        manager.create_rule(Rule("first", "low", lambda row: order.append("first")))
        manager.create_rule(Rule("second", "low", lambda row: order.append("second")))
        manager.activate("second")
        manager.activate("first")
        set_value(db, "a", 1)
        assert order == ["second", "first"]

    def test_custom_resolver(self):
        db, _, manager = make_db(
            conflict_resolver=lambda candidates: min(
                candidates, key=lambda a: a.rule.priority
            )
        )
        order = []
        manager.create_rule(Rule("a", "low", lambda row: order.append("a"), priority=5))
        manager.create_rule(Rule("b", "low", lambda row: order.append("b"), priority=1))
        manager.activate("a")
        manager.activate("b")
        set_value(db, "x", 1)
        assert order == ["b", "a"]


class TestRollbackSafety:
    @pytest.mark.parametrize("mode", ["incremental", "naive", "hybrid"])
    def test_failing_action_rolls_back_and_recovers(self, mode):
        db, _, manager = make_db(mode=mode)
        fired = []
        state = {"fail": True}

        def flaky(row):
            if state["fail"]:
                raise RuntimeError("action crashed")
            fired.append(row)

        manager.create_rule(Rule("r", "low", flaky))
        manager.activate("r")
        with pytest.raises(RuntimeError):
            set_value(db, "a", 5)
        # the update was rolled back
        assert db.relation("value").lookup((0,), ("a",)) == frozenset()
        # and the engine recovers cleanly on the next transaction
        state["fail"] = False
        set_value(db, "a", 5)
        assert fired == [("a",)]

    def test_explicit_rollback_leaves_no_pending(self):
        db, _, manager = make_db()
        fired = []
        manager.create_rule(Rule("r", "low", fired.append))
        manager.activate("r")
        db.begin()
        set_value(db, "a", 5)
        db.rollback()
        assert fired == []
        set_value(db, "b", 50)  # harmless update; must not fire anything
        assert fired == []


class TestActivationObject:
    def test_restrict_and_matches(self):
        rule = Rule("r", "low", lambda row: None, n_params=1)
        activation = Activation(rule, ("a",))
        assert activation.matches(("a", 1))
        assert not activation.matches(("b", 1))

    def test_default_conflict_resolver_prefers_priority_then_age(self):
        rule_a = Rule("a", "low", lambda row: None, priority=1)
        rule_b = Rule("b", "low", lambda row: None, priority=1)
        first = Activation(rule_a, ())
        second = Activation(rule_b, ())
        assert default_conflict_resolver([second, first]) is first
        high = Activation(Rule("c", "low", lambda row: None, priority=2), ())
        assert default_conflict_resolver([first, second, high]) is high
