"""Tests for propagation network construction (Fig. 2 / section 7.1)."""

import pytest

from repro.errors import PropagationError
from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.network import PropagationNetwork

X, Y, Z, T = Variable("X"), Variable("Y"), Variable("Z"), Variable("T")


def clause(head, *body):
    return HornClause(head, list(body))


@pytest.fixture
def program():
    """The paper's schema: cnd <- quantity & threshold; threshold over 4 fns."""
    p = Program()
    for name in ("quantity", "consume_freq", "min_stock"):
        p.declare_base(name, 2)
    p.declare_base("delivery_time", 3)
    p.declare_base("supplies", 2)
    p.declare_derived("threshold", 2)
    G1, G2 = Variable("G1"), Variable("G2")
    p.add_clause(clause(
        PredLiteral("threshold", (X, T)),
        PredLiteral("consume_freq", (X, G1)),
        PredLiteral("delivery_time", (X, G2, T)),
        PredLiteral("supplies", (X, G2)),
        PredLiteral("min_stock", (X, T)),
    ))
    p.declare_derived("cnd", 1)
    p.add_clause(clause(
        PredLiteral("cnd", (X,)),
        PredLiteral("quantity", (X, Y)),
        PredLiteral("threshold", (X, Z)),
        Comparison("<", Y, Z),
    ))
    return p


class TestFlatNetwork:
    def test_fig2_five_influents(self, program):
        """Full expansion: the condition node sits directly on the five
        stored functions — the paper's Fig. 2."""
        network = PropagationNetwork(program)
        network.add_condition("cnd")
        assert set(network.nodes) == {
            "cnd",
            "quantity",
            "consume_freq",
            "delivery_time",
            "supplies",
            "min_stock",
        }
        assert network.node("cnd").level == 1
        # 5 influents x (positive + negative) = 10 differentials
        assert network.differential_count() == 10

    def test_roots_marked(self, program):
        network = PropagationNetwork(program)
        network.add_condition("cnd")
        assert [node.name for node in network.roots()] == ["cnd"]

    def test_positive_only_network(self, program):
        network = PropagationNetwork(program, negatives=False)
        network.add_condition("cnd")
        assert network.differential_count() == 5
        for edge in network.edges():
            assert edge.negative == []


class TestSharedNetwork:
    def test_section71_bushy_network(self, program):
        """keep={threshold}: two differentials on the cnd edge pair and
        threshold becomes an intermediate node (the paper's refinement)."""
        network = PropagationNetwork(program)
        network.add_condition("cnd", keep=frozenset({"threshold"}))
        assert "threshold" in network.nodes
        threshold = network.node("threshold")
        assert threshold.kind == "derived"
        assert threshold.level == 1
        assert network.node("cnd").level == 2
        cnd_influents = {
            edge.source.name
            for edge in network.edges()
            if edge.target.name == "cnd"
        }
        assert cnd_influents == {"quantity", "threshold"}

    def test_node_sharing_across_conditions(self, program):
        """A second rule over threshold reuses the same intermediate node."""
        program.declare_derived("cnd2", 1)
        program.add_clause(clause(
            PredLiteral("cnd2", (X,)),
            PredLiteral("threshold", (X, Z)),
            Comparison(">", Z, 1000),
        ))
        network = PropagationNetwork(program)
        network.add_condition("cnd", keep=frozenset({"threshold"}))
        network.add_condition("cnd2", keep=frozenset({"threshold"}))
        threshold = network.node("threshold")
        targets = {edge.target.name for edge in threshold.out_edges}
        assert targets == {"cnd", "cnd2"}
        # threshold's own differentials exist only once
        incoming = [
            edge for edge in network.edges() if edge.target.name == "threshold"
        ]
        assert len(incoming) == 4


class TestStructure:
    def test_bottom_up_order_respects_levels(self, program):
        network = PropagationNetwork(program)
        network.add_condition("cnd", keep=frozenset({"threshold"}))
        order = [node.name for node in network.bottom_up_nodes()]
        assert order.index("threshold") < order.index("cnd")
        assert order.index("supplies") < order.index("threshold")

    def test_base_relations(self, program):
        network = PropagationNetwork(program)
        network.add_condition("cnd")
        assert network.base_relations() == {
            "quantity",
            "consume_freq",
            "delivery_time",
            "supplies",
            "min_stock",
        }

    def test_to_dot_contains_differential_labels(self, program):
        network = PropagationNetwork(program)
        network.add_condition("cnd")
        dot = network.to_dot()
        assert "Δcnd/Δ+quantity" in dot
        assert dot.startswith("digraph")

    def test_unknown_node_rejected(self, program):
        network = PropagationNetwork(program)
        with pytest.raises(PropagationError):
            network.node("nope")

    def test_add_condition_twice_is_stable(self, program):
        network = PropagationNetwork(program)
        network.add_condition("cnd")
        count = network.differential_count()
        network.add_condition("cnd")
        assert network.differential_count() == count
