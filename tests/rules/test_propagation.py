"""Tests for the breadth-first bottom-up propagation algorithm (section 5)."""

import pytest

from repro.algebra.delta import DeltaSet
from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.network import PropagationNetwork
from repro.rules.propagation import Propagator
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def clause(head, *body):
    return HornClause(head, list(body))


def make_setup(shared=False):
    """p <- q join r, optionally with mid = q kept as a shared node."""
    db = Database()
    db.create_relation("q", 2).bulk_insert([(1, 1), (2, 2)])
    db.create_relation("r", 2).bulk_insert([(1, 10), (2, 20)])
    program = Program()
    program.declare_base("q", 2)
    program.declare_base("r", 2)
    program.declare_derived("mid", 2)
    program.add_clause(clause(PredLiteral("mid", (X, Y)), PredLiteral("q", (X, Y))))
    program.declare_derived("p", 2)
    program.add_clause(clause(
        PredLiteral("p", (X, Z)),
        PredLiteral("mid", (X, Y)),
        PredLiteral("r", (Y, Z)),
    ))
    network = PropagationNetwork(program)
    keep = frozenset({"mid"}) if shared else frozenset()
    network.add_condition("p", keep=keep)
    propagator = Propagator(program, db, network)
    return db, program, network, propagator


def apply(db, name, delta):
    relation = db.relation(name)
    for row in delta.plus:
        relation.insert(row)
    for row in delta.minus:
        relation.delete(row)


class TestFlatPropagation:
    def test_insert_propagates(self):
        db, _, _, propagator = make_setup()
        delta = DeltaSet({(3, 1)}, set())
        apply(db, "q", delta)
        results = propagator.run({"q": delta})
        assert results == {"p": DeltaSet({(3, 10)}, set())}

    def test_delete_propagates_via_old_state(self):
        db, _, _, propagator = make_setup()
        delta = DeltaSet(set(), {(1, 1)})
        apply(db, "q", delta)
        results = propagator.run({"q": delta})
        assert results == {"p": DeltaSet(set(), {(1, 10)})}

    def test_unrelated_delta_produces_nothing(self):
        db, program, network, propagator = make_setup()
        db.create_relation("other", 1)
        results = propagator.run({"other": DeltaSet({(1,)}, set())})
        assert results == {}

    def test_empty_delta_runs_nothing(self):
        _, _, _, propagator = make_setup()
        assert propagator.run({}) == {}

    def test_mixed_insert_and_delete(self):
        db, _, _, propagator = make_setup()
        delta_q = DeltaSet({(3, 2)}, {(1, 1)})
        apply(db, "q", delta_q)
        results = propagator.run({"q": delta_q})
        assert results["p"] == DeltaSet({(3, 20)}, {(1, 10)})


class TestGuardedNegatives:
    def test_overlapping_deletion_still_derivable_is_guarded(self):
        """q(1,1) deleted but q'(1,1) derivable via a second clause: the
        deletion of p(1,10) must be suppressed (section 7.2)."""
        db = Database()
        db.create_relation("q", 2).bulk_insert([(1, 1)])
        db.create_relation("q2", 2).bulk_insert([(1, 1)])
        db.create_relation("r", 2).bulk_insert([(1, 10)])
        program = Program()
        program.declare_base("q", 2)
        program.declare_base("q2", 2)
        program.declare_base("r", 2)
        program.declare_derived("p", 2)
        # p has two derivations of the same tuple
        program.add_clause(clause(
            PredLiteral("p", (X, Z)),
            PredLiteral("q", (X, Y)),
            PredLiteral("r", (Y, Z)),
        ))
        program.add_clause(clause(
            PredLiteral("p", (X, Z)),
            PredLiteral("q2", (X, Y)),
            PredLiteral("r", (Y, Z)),
        ))
        network = PropagationNetwork(program)
        network.add_condition("p")
        propagator = Propagator(program, db, network)
        delta = DeltaSet(set(), {(1, 1)})
        apply(db, "q", delta)
        results = propagator.run({"q": delta}, trace=True)
        assert results == {}  # p(1,10) still derivable through q2
        trace = propagator.last_trace
        guarded = [e for e in trace.executions if e.guarded_away]
        assert guarded and guarded[0].guarded_away == {(1, 10)}

    def test_unguarded_mode_overreacts(self):
        db = Database()
        db.create_relation("q", 2).bulk_insert([(1, 1)])
        db.create_relation("q2", 2).bulk_insert([(1, 1)])
        db.create_relation("r", 2).bulk_insert([(1, 10)])
        program = Program()
        for name in ("q", "q2", "r"):
            program.declare_base(name, 2)
        program.declare_derived("p", 2)
        program.add_clause(clause(
            PredLiteral("p", (X, Z)), PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))
        ))
        program.add_clause(clause(
            PredLiteral("p", (X, Z)), PredLiteral("q2", (X, Y)), PredLiteral("r", (Y, Z))
        ))
        network = PropagationNetwork(program)
        network.add_condition("p")
        propagator = Propagator(program, db, network, guard_negatives=False)
        delta = DeltaSet(set(), {(1, 1)})
        apply(db, "q", delta)
        results = propagator.run({"q": delta})
        assert results["p"].minus == {(1, 10)}  # the raw over-propagation


class TestSharedNodePropagation:
    def test_two_level_propagation(self):
        db, _, network, propagator = make_setup(shared=True)
        assert network.node("mid").level == 1
        delta = DeltaSet({(3, 1)}, set())
        apply(db, "q", delta)
        results = propagator.run({"q": delta}, trace=True)
        assert results == {"p": DeltaSet({(3, 10)}, set())}
        labels = propagator.last_trace.executed_labels()
        assert "Δmid/Δ+q" in labels
        assert "Δp/Δ+mid" in labels

    def test_wave_front_cleared_after_run(self):
        db, _, network, propagator = make_setup(shared=True)
        delta = DeltaSet({(3, 1)}, set())
        apply(db, "q", delta)
        propagator.run({"q": delta})
        for node in network.nodes.values():
            assert node.delta.empty, f"{node.name} kept its wave front"

    def test_deletion_through_shared_node(self):
        db, _, _, propagator = make_setup(shared=True)
        delta = DeltaSet(set(), {(2, 2)})
        apply(db, "q", delta)
        results = propagator.run({"q": delta})
        assert results["p"] == DeltaSet(set(), {(2, 20)})


class TestOnlyApplicableDifferentialsExecute:
    def test_insert_only_runs_positive_differentials(self):
        db, _, _, propagator = make_setup()
        delta = DeltaSet({(3, 1)}, set())
        apply(db, "q", delta)
        propagator.run({"q": delta}, trace=True)
        signs = {e.input_sign for e in propagator.last_trace.executions}
        assert signs == {"+"}

    def test_untouched_influent_executes_nothing(self):
        db, _, _, propagator = make_setup()
        delta = DeltaSet({(5, 50)}, set())
        apply(db, "r", delta)
        propagator.run({"r": delta}, trace=True)
        influents = {e.influent for e in propagator.last_trace.executions}
        assert influents == {"r"}


class TestTraceContents:
    def test_contributors_of(self):
        db, _, _, propagator = make_setup()
        delta = DeltaSet({(3, 1)}, set())
        apply(db, "q", delta)
        propagator.run({"q": delta}, trace=True)
        contributors = propagator.last_trace.contributors_of("p", (3, 10))
        assert len(contributors) == 1
        assert contributors[0].influent == "q"
        assert propagator.last_trace.contributors_of("p", (9, 9)) == []

    def test_for_target(self):
        db, _, _, propagator = make_setup(shared=True)
        delta = DeltaSet({(3, 1)}, set())
        apply(db, "q", delta)
        propagator.run({"q": delta}, trace=True)
        targets = {e.target for e in propagator.last_trace.executions}
        assert targets == {"mid", "p"}
        assert all(
            e.target == "p" for e in propagator.last_trace.for_target("p")
        )


def make_guard_setup(batch=True):
    """p derivable through q AND q2 (the section-7.2 guard scenario)."""
    db = Database()
    db.create_relation("q", 2).bulk_insert([(1, 1)])
    db.create_relation("q2", 2).bulk_insert([(1, 1)])
    db.create_relation("r", 2).bulk_insert([(1, 10)])
    program = Program()
    for name in ("q", "q2", "r"):
        program.declare_base(name, 2)
    program.declare_derived("p", 2)
    program.add_clause(clause(
        PredLiteral("p", (X, Z)), PredLiteral("q", (X, Y)), PredLiteral("r", (Y, Z))
    ))
    program.add_clause(clause(
        PredLiteral("p", (X, Z)), PredLiteral("q2", (X, Y)), PredLiteral("r", (Y, Z))
    ))
    network = PropagationNetwork(program)
    network.add_condition("p")
    return db, Propagator(program, db, network, batch=batch)


class TestBatchEngine:
    """The set-at-a-time execution path (compiled plans, shared
    evaluators, batched guards) against its legacy reference."""

    def test_batch_and_legacy_agree_on_inserts_and_deletes(self):
        for delta in (
            DeltaSet({(3, 1)}, set()),
            DeltaSet(set(), {(1, 1)}),
            DeltaSet({(3, 2)}, {(2, 2)}),
        ):
            results = {}
            for batch in (True, False):
                db, program, network, _ = make_setup()
                propagator = Propagator(program, db, network, batch=batch)
                apply(db, "q", delta)
                results[batch] = propagator.run({"q": delta})
            assert results[True] == results[False]

    def test_batched_guard_agrees_with_per_row_guard(self):
        outcomes = {}
        for batch in (True, False):
            db, propagator = make_guard_setup(batch=batch)
            delta = DeltaSet(set(), {(1, 1)})
            apply(db, "q", delta)
            outcomes[batch] = (
                propagator.run({"q": delta}, trace=True),
                [
                    (e.label, e.produced, e.guarded_away)
                    for e in propagator.last_trace.executions
                ],
            )
        assert outcomes[True] == outcomes[False]

    def test_batched_guard_counter(self):
        from repro.obs import metrics

        db, propagator = make_guard_setup(batch=True)
        delta = DeltaSet(set(), {(1, 1)})
        apply(db, "q", delta)
        with metrics.collecting() as registry:
            results = propagator.run({"q": delta})
        assert results == {}
        assert registry.value("propagation.guard_batched") >= 1
        assert registry.value("propagation.tuples_guarded") == 1

    def test_wavefront_gauge_counts_live_rows_incrementally(self):
        from repro.obs import metrics

        db, _, _, propagator = make_setup(shared=True)
        delta = DeltaSet({(3, 1), (4, 2)}, set())
        apply(db, "q", delta)
        with metrics.collecting() as registry:
            propagator.run({"q": delta})
        peak = registry.gauge("propagation.wavefront_peak").max_value
        # at the peak both q's delta (2 rows) and what it produced
        # upward are materialized simultaneously
        assert peak >= 2
        # every delta-set was discarded as the wave front passed
        assert propagator._live == 0
        for node in propagator.network.nodes.values():
            assert node.delta.empty

    def test_consecutive_runs_share_no_stale_state(self):
        """The two persistent run evaluators must be fully reset between
        runs: memos, delta indexes, and probers from run 1 must not
        leak into run 2."""
        db, _, _, propagator = make_setup(shared=True)
        first = DeltaSet({(3, 1)}, set())
        apply(db, "q", first)
        assert propagator.run({"q": first}) == {"p": DeltaSet({(3, 10)}, set())}
        second = DeltaSet(set(), {(3, 1)})
        apply(db, "q", second)
        assert propagator.run({"q": second}) == {"p": DeltaSet(set(), {(3, 10)})}
        third = DeltaSet({(5, 2)}, set())
        apply(db, "q", third)
        assert propagator.run({"q": third}) == {"p": DeltaSet({(5, 20)}, set())}
