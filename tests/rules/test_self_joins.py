"""Self-joins: the delicate per-occurrence differential case.

A condition referencing the same relation twice gets one differential
pair per OCCURRENCE; inserting a tuple that joins with itself, or with
another tuple inserted in the same transaction, must be seen exactly
once (set semantics de-duplicates the double counting).
"""

import pytest

from repro.objectlog.clause import HornClause
from repro.objectlog.literals import Comparison, PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.rules.manager import RuleManager
from repro.rules.rule import Rule
from repro.storage.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def build(mode="incremental"):
    """path2(X,Z) <- edge(X,Y) & edge(Y,Z)."""
    db = Database()
    db.create_relation("edge", 2)
    program = Program()
    program.declare_base("edge", 2)
    program.declare_derived("path2", 2)
    program.add_clause(HornClause(
        PredLiteral("path2", (X, Z)),
        [PredLiteral("edge", (X, Y)), PredLiteral("edge", (Y, Z))],
    ))
    manager = RuleManager(db, program, mode=mode)
    fired = []
    manager.create_rule(Rule("watch", "path2", fired.append))
    manager.activate("watch")
    return db, fired


class TestSelfJoins:
    def test_two_differential_pairs_generated(self):
        db, _ = build()
        # peek into the network: edge -> path2 must carry 2 (+) and 2 (-)
        from repro.rules.network import PropagationNetwork

        program = Program()
        program.declare_base("edge", 2)
        program.declare_derived("path2", 2)
        program.add_clause(HornClause(
            PredLiteral("path2", (X, Z)),
            [PredLiteral("edge", (X, Y)), PredLiteral("edge", (Y, Z))],
        ))
        network = PropagationNetwork(program)
        network.add_condition("path2")
        (edge,) = network.edges()
        assert len(edge.positive) == 2
        assert len(edge.negative) == 2

    def test_new_tuple_joining_existing(self):
        db, fired = build()
        db.insert("edge", (1, 2))
        assert fired == []  # no 2-path yet
        db.insert("edge", (2, 3))
        assert sorted(fired) == [(1, 3)]

    def test_tuple_joining_itself(self):
        """A loop edge (5,5) forms the 2-path (5,5) all by itself —
        each occurrence differential produces it; fired once."""
        db, fired = build()
        db.insert("edge", (5, 5))
        assert fired == [(5, 5)]

    def test_both_sides_inserted_in_one_transaction(self):
        db, fired = build()
        with db.transaction():
            db.insert("edge", (1, 2))
            db.insert("edge", (2, 3))
        assert sorted(fired) == [(1, 3)]

    def test_chain_extension_fires_for_all_new_paths(self):
        db, fired = build()
        with db.transaction():
            db.insert("edge", (1, 2))
            db.insert("edge", (2, 3))
            db.insert("edge", (3, 4))
        assert sorted(fired) == [(1, 3), (2, 4)]

    def test_deleting_middle_edge_removes_paths_silently(self):
        """Deletion un-triggers (net change) but actions run on Δ+ only."""
        db, fired = build()
        with db.transaction():
            db.insert("edge", (1, 2))
            db.insert("edge", (2, 3))
        assert sorted(fired) == [(1, 3)]
        db.delete("edge", (2, 3))
        assert sorted(fired) == [(1, 3)]  # nothing new fired
        # re-adding re-fires: proof the deletion was propagated
        db.insert("edge", (2, 3))
        assert sorted(fired) == [(1, 3), (1, 3)]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_equals_naive_on_random_edge_churn(self, seed):
        import random

        def run(mode):
            db, fired = build(mode)
            rng = random.Random(seed)
            for _ in range(40):
                row = (rng.randrange(4), rng.randrange(4))
                if rng.random() < 0.6:
                    db.insert("edge", row)
                else:
                    db.delete("edge", row)
            return sorted(fired)

        assert run("incremental") == run("naive")
