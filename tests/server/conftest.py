"""Hygiene for the server suite: no global observers may leak.

The server installs tracers only transiently (inside the commit
critical section); these assertions catch any escape, mirroring
``tests/obs/conftest.py``.
"""

import pytest

from repro.obs import metrics, tracing


@pytest.fixture(autouse=True)
def no_observer_leaks():
    assert metrics.ACTIVE is None, "a metrics registry leaked into this test"
    assert tracing.ACTIVE is None, "a tracer leaked into this test"
    yield
    leaked_metrics = metrics.ACTIVE is not None
    leaked_tracing = tracing.ACTIVE is not None
    metrics.uninstall()
    tracing.uninstall()
    assert not leaked_metrics, "test leaked an installed metrics registry"
    assert not leaked_tracing, "test leaked an installed tracer"
