"""Concurrency semantics: interleaved server commits ≡ sequential runs.

The engine lock makes each commit's apply + deferred check phase one
critical section, so any interleaving of transactions over **disjoint
items** must produce exactly the state and rule firings of running the
same transactions sequentially in process.  Two ``build_inventory``
calls with the same seed create identical OIDs, which lets the tests
compare :meth:`AmosDatabase.snapshot_extensions` byte for byte.
"""

import threading
from collections import Counter

from hypothesis import given, settings

from repro.bench.workload import build_inventory
from repro.server import AmosClient, AmosServer

from tests.obs.test_property_obs import N_ITEMS as SCRIPT_ITEMS
from tests.obs.test_property_obs import script

SEED = 7


def run_on_server(n_items, thread_scripts, observe=True, **server_kwargs):
    """Run one transaction script per concurrent client session.

    Each script is ``[(ops, commit), ...]`` with ops ``(global item
    index, quantity)``.  Extra ``server_kwargs`` reach the
    :class:`AmosServer` (e.g. ``group_commit=True``).  Returns
    ``(workload, server)`` after ``server.stop()`` — stats and traces
    remain readable.
    """
    workload = build_inventory(n_items, seed=SEED)
    workload.activate()
    server = AmosServer(amos=workload.amos, observe=observe, **server_kwargs)
    server.start()
    host, port = server.address
    barrier = threading.Barrier(len(thread_scripts))
    failures = []

    def worker(txns):
        try:
            with AmosClient(host, port, timeout=30.0) as client:
                indexes = sorted({i for ops, _ in txns for i, _ in ops})
                for index in indexes:
                    client.bind(f"i{index}", workload.items[index])
                barrier.wait(timeout=30.0)
                for ops, commit in txns:
                    client.begin()
                    for index, quantity in ops:
                        client.execute(f"set quantity(:i{index}) = {quantity};")
                    if commit:
                        client.commit()
                    else:
                        client.rollback()
        except BaseException as exc:  # noqa: BLE001 - reported to the main thread
            failures.append(exc)

    threads = [
        threading.Thread(target=worker, args=(txns,)) for txns in thread_scripts
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    server.stop()
    assert not failures, failures
    return workload, server


def run_sequentially(n_items, thread_scripts):
    """The baseline: same transactions, one after another, in process."""
    workload = build_inventory(n_items, seed=SEED)
    workload.activate()
    amos = workload.amos
    for txns in thread_scripts:
        for ops, commit in txns:
            amos.begin()
            for index, quantity in ops:
                amos.set_value("quantity", (workload.items[index],), quantity)
            if commit:
                amos.commit()
            else:
                amos.rollback()
    return workload


def firing_multiset(workload):
    return Counter(workload.orders)


class TestDeterministicEquivalence:
    # four sessions, three items each; quantities straddle the
    # threshold (140) so rules fire, recover, and net out
    SCRIPTS = [
        [
            ([(base + 0, 120)], True),  # fire
            ([(base + 1, 130), (base + 1, 150)], True),  # dip nets out
            ([(base + 2, 100)], False),  # rolled back, no effect
            ([(base + 0, 5000), (base + 2, 135)], True),  # recover + fire
        ]
        for base in (0, 3, 6, 9)
    ]

    def test_final_state_and_firings_match_sequential(self):
        concurrent, server = run_on_server(12, self.SCRIPTS)
        sequential = run_sequentially(12, self.SCRIPTS)
        assert (
            concurrent.amos.snapshot_extensions()
            == sequential.amos.snapshot_extensions()
        )
        assert firing_multiset(concurrent) == firing_multiset(sequential)
        # sanity: the script genuinely fires rules
        assert sum(firing_multiset(concurrent).values()) >= 8

    def test_server_accounting_after_the_run(self):
        _, server = run_on_server(12, self.SCRIPTS)
        stats = server.stats()
        commits = sum(1 for txns in self.SCRIPTS for _, commit in txns if commit)
        rollbacks = sum(
            1 for txns in self.SCRIPTS for _, commit in txns if not commit
        )
        assert stats["counters"]["server.commits"] == commits
        assert stats["counters"]["server.rollbacks"] == rollbacks
        assert stats["counters"]["server.sessions_opened"] == len(self.SCRIPTS)
        assert stats["gauges"]["server.connections"]["value"] == 0
        # every session went through the closed-session history
        closed = {snap["id"]: snap for snap in stats["closed_sessions"]}
        assert len(closed) == len(self.SCRIPTS)
        assert sum(snap["counters"]["commits"] for snap in closed.values()) == commits

    def test_last_commit_trace_nests_the_check_phase(self):
        _, server = run_on_server(12, self.SCRIPTS)
        trace = server.last_commit_trace
        assert trace is not None and trace.name == "server.commit"
        assert trace.find("check_phase")


class TestPropertyEquivalence:
    @given(txns=script)
    @settings(max_examples=5, deadline=None)
    def test_any_script_is_interleaving_independent(self, txns):
        """Two sessions run the SAME randomly drawn script remapped onto
        disjoint item ranges; any interleaving must equal the
        sequential baseline."""

        def remap(txns, offset):
            return [
                ([(index + offset, quantity) for index, quantity in ops], commit)
                for ops, commit in txns
            ]

        thread_scripts = [remap(txns, 0), remap(txns, SCRIPT_ITEMS)]
        n_items = 2 * SCRIPT_ITEMS
        concurrent, _ = run_on_server(n_items, thread_scripts, observe=False)
        sequential = run_sequentially(n_items, thread_scripts)
        assert (
            concurrent.amos.snapshot_extensions()
            == sequential.amos.snapshot_extensions()
        )
        assert firing_multiset(concurrent) == firing_multiset(sequential)
