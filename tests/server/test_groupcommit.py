"""Group commit: concurrent transactions coalesce into ONE merged wave.

Deterministic coalescing uses the engine lock directly: it is an RLock,
so the test thread can hold it while client handler threads block on
it.  Every member then enqueues its commit on the commit queue; when
the test releases the lock, the first handler through becomes the
leader and processes the WHOLE queue as one merged transaction — one
check phase, one snapshot epoch, acks for everyone (docs/SERVER.md).

The organic (no lock held) interleavings are covered by reusing the
equivalence harness of ``test_concurrency`` with ``group_commit=True``:
disjoint-item workloads must match the sequential baseline no matter
how the batches form.
"""

import threading
import time

import pytest

from repro.amosql.interpreter import AmosqlEngine
from repro.amosql.parser import parse
from repro.bench.workload import build_inventory
from repro.errors import RemoteError, ReproError
from repro.server import AmosClient, AmosServer

from tests.server.test_concurrency import (
    firing_multiset,
    run_on_server,
    run_sequentially,
)

SEED = 13
MAX_STOCK = 5000  # the rule action orders max_stock(i) - quantity(i)


def start_group_server(n_items=6, observe=True, **amos_options):
    workload = build_inventory(n_items, seed=SEED, **amos_options)
    workload.activate()
    server = AmosServer(
        amos=workload.amos, observe=observe, group_commit=True
    )
    server.start()
    return workload, server


def run_coalesced(workload, server, members, timeout=30.0):
    """Force one commit per member into a single group-commit batch.

    ``members`` is a list of statement lists; an ``(index, quantity)``
    tuple is shorthand for ``set quantity(:i<index>) = <quantity>;``
    with the item bound up front.  The test thread holds the engine
    lock (reentrant — only the handler threads block on it) until every
    member's commit request is enqueued, then releases it so exactly
    one leader drains the whole batch.

    Returns ``(acks, errors)`` indexed like ``members``: ``acks[k]`` is
    ``(epoch, coalesced)`` from the commit response, ``errors[k]`` the
    exception the member's commit raised (None on success).
    """
    host, port = server.address
    n = len(members)
    acks, errors = [None] * n, [None] * n
    buffered = threading.Barrier(n + 1)

    def worker(index, statements):
        try:
            with AmosClient(host, port, timeout=timeout) as client:
                for statement in statements:
                    if isinstance(statement, tuple):
                        item_index = statement[0]
                        client.bind(f"i{item_index}", workload.items[item_index])
                client.begin()
                for statement in statements:
                    if isinstance(statement, tuple):
                        item_index, quantity = statement
                        client.execute(
                            f"set quantity(:i{item_index}) = {quantity};"
                        )
                    else:
                        client.execute(statement)
                buffered.wait(timeout=timeout)
                client.commit()
                acks[index] = (
                    client.last_commit_epoch,
                    client.last_commit_coalesced,
                )
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            errors[index] = exc

    threads = [
        threading.Thread(target=worker, args=(index, statements))
        for index, statements in enumerate(members)
    ]
    with server._engine_lock:
        for thread in threads:
            thread.start()
        buffered.wait(timeout=timeout)  # every member buffered its txn
        deadline = time.monotonic() + timeout
        while len(server._commit_queue) < n:
            assert time.monotonic() < deadline, "commits never enqueued"
            time.sleep(0.002)
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive()
    return acks, errors


class TestDeterministicCoalescing:
    def test_concurrent_commits_share_one_batch_and_epoch(self):
        workload, server = start_group_server(n_items=6)
        try:
            epoch_before = workload.amos.storage.snapshot_epoch
            # four sessions, four disjoint items, all dipping below the
            # threshold (140) — the merged wave must fire all four
            members = [[(index, 120 + index)] for index in range(4)]
            acks, errors = run_coalesced(workload, server, members)
            assert errors == [None] * 4
            epochs = {epoch for epoch, _ in acks}
            assert len(epochs) == 1, acks  # the shared batch epoch
            assert epochs == {epoch_before + 1}  # ONE publication, not 4
            assert [coalesced for _, coalesced in acks] == [4] * 4
            assert sorted(workload.orders) == sorted(
                (workload.items[index], MAX_STOCK - (120 + index))
                for index in range(4)
            )

            stats = server.stats()
            assert stats["counters"]["server.group_commits"] == 1
            assert stats["counters"]["server.commits"] == 4
            assert stats["counters"]["server.commits_coalesced"] == 3
            batch_hist = stats["histograms"]["server.commit_queue.batch_size"]
            assert batch_hist["count"] == 1 and batch_hist["max"] == 4
            wait_hist = stats["histograms"]["server.commit_queue.wait_ms"]
            assert wait_hist["count"] == 4
            # every member's session recorded that its commit rode a
            # batch (a session may still be live while its handler
            # thread unwinds, so merge the live and closed views)
            sessions = list(stats["closed_sessions"]) + [
                snap for snap in stats["sessions"].values()
            ]
            assert sorted(
                snap["counters"]["commits_coalesced"]
                for snap in sessions
                if snap["counters"]["commits"]
            ) == [1, 1, 1, 1]
        finally:
            server.stop()

    def test_uncontended_commit_is_a_batch_of_one(self):
        workload, server = start_group_server(n_items=2)
        try:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.bind("i0", workload.items[0])
                with client.transaction():
                    client.execute("set quantity(:i0) = 120;")
                assert client.last_commit_coalesced == 1
                assert (
                    client.last_commit_epoch
                    == workload.amos.storage.snapshot_epoch
                )
            assert workload.orders == [(workload.items[0], MAX_STOCK - 120)]
            stats = server.stats()
            assert stats["counters"]["server.group_commits"] == 1
            assert stats["counters"]["server.commits"] == 1
            assert stats["counters"].get("server.commits_coalesced", 0) == 0
        finally:
            server.stop()

    def test_member_error_is_isolated_from_the_batch(self):
        workload, server = start_group_server(n_items=3)
        try:
            members = [
                [(0, 120)],
                # parses and buffers fine; fails at replay (the interface
                # variable is never bound in that session)
                ["set quantity(:never_bound) = 1;"],
            ]
            acks, errors = run_coalesced(workload, server, members)
            assert errors[0] is None
            assert acks[0] is not None and acks[0][1] == 2  # still a 2-batch
            assert isinstance(errors[1], RemoteError)
            assert acks[1] is None
            # the good member's update survived the bad one
            assert workload.amos.value("quantity", workload.items[0]) == 120
            assert workload.orders == [(workload.items[0], MAX_STOCK - 120)]
            stats = server.stats()
            assert stats["counters"]["server.commits"] == 1  # only the survivor
            assert stats["counters"]["server.group_commits"] == 1
        finally:
            server.stop()

    def test_group_commit_trace_wraps_one_check_phase(self):
        workload, server = start_group_server(n_items=4)
        try:
            members = [[(index, 130)] for index in range(3)]
            _, errors = run_coalesced(workload, server, members)
            assert errors == [None] * 3
            trace = server.last_commit_trace
            assert trace is not None and trace.name == "server.group_commit"
            assert trace.attributes["members"] == 3
            assert trace.find("check_phase")
        finally:
            server.stop()

    def test_last_check_stats_show_the_coalescing_window(self):
        # the DATABASE needs observe=True here: last_check_stats() reads
        # the per-commit registry the rule manager keeps
        workload = build_inventory(4, seed=SEED, observe=True)
        workload.activate()
        server = AmosServer(
            amos=workload.amos, observe=True, group_commit=True
        )
        server.start()
        try:
            members = [[(index, 125)] for index in range(3)]
            _, errors = run_coalesced(workload, server, members)
            assert errors == [None] * 3
            derived = workload.amos.last_check_stats()["derived"]
            assert derived["commit_batch_size"] == 3
            assert derived["commits_coalesced"] == 2
            assert derived["commit_queue_wait_ms_max"] >= 0
        finally:
            server.stop()


class TestLeaderHandoff:
    """The leader's OWN member failing must never strand the batch.

    The enqueue-before-lock invariant guarantees a request can always
    be led by its own thread; the dual obligation is that a leader
    whose own savepoint fails still acknowledges every drained member
    before surfacing its error.  The engine lock is an RLock, so the
    test thread can (a) hold it while follower commits pile up in the
    queue, then (b) call ``_commit_grouped`` itself for a failing
    session — reentrancy makes the test thread the leader
    deterministically, with its bad member in the drained batch.
    """

    def test_leader_with_failing_member_acks_the_followers(self):
        workload, server = start_group_server(n_items=4)
        try:
            host, port = server.address
            n = 3
            acks, errors = [None] * n, [None] * n
            buffered = threading.Barrier(n + 1)

            def follower(index):
                try:
                    with AmosClient(host, port, timeout=30.0) as client:
                        client.bind(f"i{index}", workload.items[index])
                        client.begin()
                        client.execute(
                            f"set quantity(:i{index}) = {120 + index};"
                        )
                        buffered.wait(timeout=30.0)
                        client.commit()
                        acks[index] = (
                            client.last_commit_epoch,
                            client.last_commit_coalesced,
                        )
                except BaseException as exc:  # noqa: BLE001
                    errors[index] = exc

            threads = [
                threading.Thread(target=follower, args=(index,))
                for index in range(n)
            ]
            # the leader's member: parses fine, fails at savepoint
            # replay (the interface variable was never bound)
            leader = server.sessions.open(engine=AmosqlEngine(server.amos))
            doomed = parse("set quantity(:never_bound) = 1;")

            with server._engine_lock:
                for thread in threads:
                    thread.start()
                buffered.wait(timeout=30.0)
                deadline = time.monotonic() + 30.0
                while len(server._commit_queue) < n:
                    assert time.monotonic() < deadline, "never enqueued"
                    time.sleep(0.002)
                # still holding the lock: lead the batch from THIS
                # thread on behalf of the failing session
                with pytest.raises(ReproError, match="never_bound"):
                    server._commit_grouped(leader, doomed)
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "a follower stranded"

            # every follower was acked by the failing leader, in the
            # SAME batch (coalesced=4: three followers + the leader)
            assert errors == [None] * n
            assert all(ack is not None for ack in acks)
            epochs = {epoch for epoch, _ in acks}
            assert len(epochs) == 1
            assert [coalesced for _, coalesced in acks] == [4] * n
            assert len(server._commit_queue) == 0

            # the followers' updates stand; the leader applied nothing
            for index in range(n):
                assert (
                    workload.amos.value("quantity", workload.items[index])
                    == 120 + index
                )
            stats = server.stats()
            assert stats["counters"]["server.group_commits"] == 1
            assert stats["counters"]["server.commits"] == n  # not the leader
        finally:
            server.stop()

    def test_every_member_failing_still_completes_the_batch(self):
        # degenerate handoff: the whole batch (leader included) fails
        # its savepoints — everyone must still get an answer
        workload, server = start_group_server(n_items=2)
        try:
            members = [
                ["set quantity(:nope_a) = 1;"],
                ["set quantity(:nope_b) = 2;"],
            ]
            acks, errors = run_coalesced(workload, server, members)
            assert acks == [None, None]
            assert all(isinstance(error, RemoteError) for error in errors)
            assert len(server._commit_queue) == 0
            stats = server.stats()
            assert stats["counters"].get("server.commits", 0) == 0
            assert stats["counters"]["server.group_commits"] == 1
        finally:
            server.stop()


class TestOrganicEquivalence:
    # same shape as test_concurrency: four sessions over disjoint items,
    # quantities straddling the threshold so firings enter/net/recover
    SCRIPTS = [
        [
            ([(base + 0, 120)], True),
            ([(base + 1, 130), (base + 1, 150)], True),
            ([(base + 2, 100)], False),  # rolled back
            ([(base + 0, 5000), (base + 2, 135)], True),
        ]
        for base in (0, 3, 6, 9)
    ]

    def test_any_batching_matches_the_sequential_baseline(self):
        concurrent, server = run_on_server(
            12, self.SCRIPTS, group_commit=True
        )
        sequential = run_sequentially(12, self.SCRIPTS)
        assert (
            concurrent.amos.snapshot_extensions()
            == sequential.amos.snapshot_extensions()
        )
        assert firing_multiset(concurrent) == firing_multiset(sequential)
        stats = server.stats()
        commits = sum(
            1 for txns in self.SCRIPTS for _, commit in txns if commit
        )
        assert stats["counters"]["server.commits"] == commits
        # however the batches formed, every commit went through a group
        assert stats["counters"]["server.group_commits"] >= 1
        assert (
            stats["histograms"]["server.commit_queue.batch_size"]["sum"]
            == commits
        )
