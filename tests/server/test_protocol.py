"""Wire protocol framing and the result codec, off the network."""

import json
import socket
import struct

import pytest

from repro.amos.oid import OID
from repro.amosql import ast
from repro.errors import ProtocolError
from repro.server import codec, protocol
from repro.server.codec import BUFFERED


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"id": 1, "op": "execute", "script": "commit;"}
        protocol.write_frame(left, payload)
        assert protocol.read_frame(right) == payload

    def test_many_frames_stay_in_order(self, pair):
        left, right = pair
        for n in range(5):
            protocol.write_frame(left, {"id": n})
        for n in range(5):
            assert protocol.read_frame(right) == {"id": n}

    def test_unicode_survives(self, pair):
        left, right = pair
        payload = {"script": 'set name(:i) = "sköld";'}
        protocol.write_frame(left, payload)
        assert protocol.read_frame(right) == payload

    def test_clean_eof_is_none(self, pair):
        left, right = pair
        left.close()
        assert protocol.read_frame(right) is None

    def test_truncated_body_raises(self, pair):
        left, right = pair
        body = json.dumps({"id": 1}).encode()
        left.sendall(struct.pack(">I", len(body) + 10) + body)
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame|between header"):
            protocol.read_frame(right)

    def test_truncated_header_raises(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(right)

    def test_oversize_read_rejected_before_body(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 1024))
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.read_frame(right, max_frame=64)

    def test_oversize_write_refused(self, pair):
        left, _ = pair
        with pytest.raises(ProtocolError, match="refusing to send"):
            protocol.write_frame(left, {"blob": "x" * 100}, max_frame=64)

    def test_non_json_body_raises(self, pair):
        left, right = pair
        body = b"not json at all"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.read_frame(right)

    def test_non_object_payload_raises(self, pair):
        left, right = pair
        body = json.dumps([1, 2, 3]).encode()
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.read_frame(right)


class TestCodec:
    def test_rows_round_trip_with_oids(self):
        statement = ast.SelectStatement(query=None)
        rows = [(OID(7, "item"), "bolts", 120), (OID(8, "item"), "nuts", 95)]
        payload = codec.encode_result(statement, rows)
        assert payload["kind"] == "rows"
        decoded = codec.decode_result(payload)
        assert decoded == rows
        assert decoded[0][0].type_name == "item"

    def test_oids_round_trip(self):
        statement = ast.CreateInstances(type_name="item", names=("i",))
        payload = codec.encode_result(statement, [OID(3, "item")])
        assert codec.decode_result(payload) == [OID(3, "item")]

    def test_malformed_oids_rejected(self):
        with pytest.raises(ProtocolError, match="malformed oids"):
            codec.decode_result({"kind": "oids", "oids": [42]})

    def test_call_value_and_opaque_fallback(self):
        statement = ast.CallStatement(call=None)
        assert codec.decode_result(codec.encode_result(statement, 99)) == 99
        opaque = codec.encode_result(statement, object())
        assert "$repr" in opaque["value"]
        assert "object" in codec.decode_result(opaque)

    def test_buffered_sentinel(self):
        assert codec.decode_result({"kind": "buffered"}) is BUFFERED
        assert "buffered" in repr(BUFFERED)

    def test_committed_nests_inner_results(self):
        payload = {
            "kind": "committed",
            "results": [{"kind": "none"}, {"kind": "value", "value": 5}],
        }
        assert codec.decode_result(payload) == [None, 5]

    def test_plain_kinds_decode_to_none(self):
        for kind in ("none", "begun", "rolledback"):
            assert codec.decode_result({"kind": kind}) is None

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError, match="unknown result kind"):
            codec.decode_result({"kind": "surprise"})
