"""The lock-free read path: ``query_ro`` over the wire.

The acceptance property of the whole snapshot-read design lives here:
a commit that is *blocked mid-check-phase while holding the engine
lock* must not delay a concurrent ``query_ro`` — the reader answers
from the last published epoch.  Synchronization is purely event-based
(a rule action that parks on a ``threading.Event``), no sleeps.
"""

import threading

import pytest

from repro.errors import RemoteError
from repro.server import AmosClient, AmosServer

SCHEMA = """
create type item;
create function quantity(item) -> integer;
create item instances :a, :b;
set quantity(:a) = 10;
set quantity(:b) = 50;
"""

QUERY = "select q for each item i, integer q where quantity(i) = q"


def start_server(**kwargs):
    """An unstarted server; ``with start_server() as s:`` starts it."""
    return AmosServer(port=0, **kwargs)


class TestQueryRo:
    def test_rows_match_live_query(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                assert client.query_ro(QUERY) == client.query(QUERY)
                assert client.last_ro_epoch == server.amos.snapshot_epoch

    def test_epoch_advances_with_commits_not_reads(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                client.query_ro(QUERY)
                first = client.last_ro_epoch
                client.query_ro(QUERY)
                assert client.last_ro_epoch == first  # reads don't publish
                with client.transaction():
                    client.execute("set quantity(:a) = 11;")
                client.query_ro(QUERY)
                assert client.last_ro_epoch > first

    def test_multi_select_script_sees_one_epoch(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                epoch, results = client.execute_ro(
                    f"{QUERY};\n{QUERY} and q < 20;"
                )
                assert epoch == server.amos.snapshot_epoch
                assert sorted(results[0]) == [(10,), (50,)]
                assert sorted(results[1]) == [(10,)]

    def test_rejects_updates_and_ddl(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                for script in (
                    "set quantity(:a) = 1;",
                    "create type gadget;",
                    "begin;",
                ):
                    with pytest.raises(RemoteError):
                        client.execute_ro(script)
                # the connection survives the rejection
                assert client.query_ro(QUERY)

    def test_does_not_see_uncommitted_buffered_state(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as writer, AmosClient(
                host, port
            ) as reader:
                writer.execute(SCHEMA)
                writer.begin()
                writer.execute("set quantity(:a) = 1;")
                # buffered on the writer's session, not yet applied
                assert sorted(reader.query_ro(QUERY)) == [(10,), (50,)]
                writer.commit()
                assert sorted(reader.query_ro(QUERY)) == [(1,), (50,)]

    def test_counters_and_lag_metrics(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                client.query_ro(QUERY)
                client.query_ro(QUERY)
                stats = client.stats()
        assert stats["counters"]["server.query_ro"] == 2
        assert stats["gauges"]["snapshot.epoch_lag"]["value"] == 0
        assert stats["histograms"]["snapshot.epoch_lag"]["count"] == 2
        assert stats["histograms"]["server.query_ro_ms"]["count"] == 2
        sessions = {**stats["sessions"], **{
            s["id"]: s for s in stats["closed_sessions"]
        }}
        assert any(
            s["counters"].get("queries_ro") == 2 for s in sessions.values()
        )


class TestEpochPinnedReads:
    """Protocol v3: ``query_ro(epoch=...)`` pins one historic snapshot
    from the server's bounded history ring (``db.snapshot_history``)."""

    def test_pin_holds_a_past_epoch_across_commits(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                client.query_ro(QUERY)
                pinned = client.last_ro_epoch
                with client.transaction():
                    client.execute("set quantity(:a) = 11;")
                with client.transaction():
                    client.execute("set quantity(:a) = 12;")
                # the pinned epoch still serves its original rows
                assert sorted(client.query_ro(QUERY, epoch=pinned)) == [
                    (10,),
                    (50,),
                ]
                assert client.last_ro_epoch == pinned
                assert sorted(client.query_ro(QUERY)) == [(12,), (50,)]

    def test_read_your_own_commit_via_its_acked_epoch(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as writer, AmosClient(
                host, port
            ) as reader:
                writer.execute(SCHEMA)
                with writer.transaction():
                    writer.execute("set quantity(:a) = 11;")
                committed = writer.last_commit_epoch
                assert committed == server.amos.snapshot_epoch
                assert writer.last_commit_coalesced == 1  # serial server
                rows = reader.query_ro(QUERY, epoch=committed)
                assert sorted(rows) == [(11,), (50,)]

    def test_evicted_epoch_fails_with_a_clear_error(self):
        with start_server() as server:
            server.amos.storage.snapshot_history = 2
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                client.query_ro(QUERY)
                ancient = client.last_ro_epoch
                for value in (11, 12, 13):
                    with client.transaction():
                        client.execute(f"set quantity(:a) = {value};")
                with pytest.raises(RemoteError) as excinfo:
                    client.query_ro(QUERY, epoch=ancient)
                assert excinfo.value.remote_type == "SnapshotEpochError"
                assert "evicted" in str(excinfo.value)
                # the connection survives; the live snapshot still works
                assert sorted(client.query_ro(QUERY)) == [(13,), (50,)]

    def test_future_epoch_rejected(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                with pytest.raises(RemoteError) as excinfo:
                    client.query_ro(QUERY, epoch=10_000)
                assert excinfo.value.remote_type == "SnapshotEpochError"
                assert "not been published" in str(excinfo.value)

    def test_non_integer_epoch_is_a_protocol_error(self):
        with start_server() as server:
            host, port = server.address
            with AmosClient(host, port) as client:
                client.execute(SCHEMA)
                with pytest.raises(RemoteError) as excinfo:
                    client._call("query_ro", script=f"{QUERY};", epoch="new")
                assert excinfo.value.remote_type == "ProtocolError"


class TestReadsOffTheCommitLock:
    def test_query_ro_completes_while_commit_holds_the_engine_lock(self):
        """THE acceptance test: block a commit mid-check-phase (it holds
        the engine lock) and still serve a query_ro from another
        connection, with the pre-commit epoch and rows."""
        entered = threading.Event()
        release = threading.Event()

        server = start_server()
        gate_calls = []

        def gate(oid):
            gate_calls.append(oid)
            entered.set()
            assert release.wait(timeout=30.0), "test never released the commit"

        server.amos.create_procedure("gate", ("item",), gate)
        server.start()
        host, port = server.address
        try:
            with AmosClient(host, port) as setup:
                setup.execute(SCHEMA)
                setup.execute(
                    """
                    create rule watch_low() as
                        when for each item i where quantity(i) < 5
                        do gate(i);
                    activate watch_low();
                    """
                )
            epoch_before = server.amos.snapshot_epoch

            def writer():
                with AmosClient(host, port) as client:
                    # iface vars are per-session: look the item up first
                    (row,) = client.query(
                        "select i for each item i where quantity(i) = 10"
                    )
                    client.bind("a", row[0])
                    with client.transaction():
                        client.execute("set quantity(:a) = 1;")

            blocked = threading.Thread(target=writer)
            blocked.start()
            try:
                # the commit is now inside its check phase, holding the
                # engine lock, waiting on `release`
                assert entered.wait(timeout=30.0)
                with AmosClient(host, port) as reader:
                    rows = reader.query_ro(QUERY)
                    assert sorted(rows) == [(10,), (50,)]  # pre-commit state
                    assert reader.last_ro_epoch == epoch_before
            finally:
                release.set()
                blocked.join(timeout=30.0)
            assert not blocked.is_alive()
            assert gate_calls  # the rule really fired

            # after the commit finished, reads see the new epoch
            with AmosClient(host, port) as reader:
                assert sorted(reader.query_ro(QUERY)) == [(1,), (50,)]
                assert reader.last_ro_epoch > epoch_before
        finally:
            release.set()
            server.stop()
