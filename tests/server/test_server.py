"""Integration tests: a live server, real sockets, the blocking client.

Every test boots its own :class:`AmosServer` on an ephemeral port over
the paper's inventory example (``monitor_items`` active, threshold
140, ``max_stock`` 5000/7500).
"""

import threading

import pytest

from repro.amos.oid import OID
from repro.errors import ProtocolError, RemoteError, ServerError
from repro.server import AmosClient, AmosServer, BUFFERED
from tests.conftest import make_inventory_engine


@pytest.fixture()
def inventory_server():
    """(server, orders): started server over the active inventory rule."""
    engine, orders = make_inventory_engine(explain=True)
    engine.execute("activate monitor_items();")
    server = AmosServer(amos=engine.amos, observe=True)
    server.start()
    try:
        yield server, orders
    finally:
        server.stop()


def connect(server, **kwargs):
    """A client for ``server``, not yet connected (``with`` connects)."""
    host, port = server.address
    return AmosClient(host, port, timeout=10.0, **kwargs)


class TestHandshake:
    def test_hello_ping_and_close(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            assert client.session_id == "s1"
            assert client.connected
            assert client.ping() >= 0.0
            assert "s1" in repr(client)
        assert not client.connected
        client.close()  # idempotent

    def test_each_connection_gets_its_own_session(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as a, connect(server) as b:
            assert a.session_id != b.session_id
            assert len(server.sessions) == 2

    def test_connect_refused_after_retries(self):
        client = AmosClient("127.0.0.1", 1, connect_retries=1, retry_delay=0.0)
        with pytest.raises(ServerError, match="cannot connect"):
            client.connect()

    def test_double_connect_rejected(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            with pytest.raises(ServerError, match="already connected"):
                client.connect()


class TestStatements:
    def test_query_returns_typed_rows(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            rows = client.query("select i, quantity(i) for each item i")
            assert sorted(q for _, q in rows) == [5000, 7500]
            assert all(isinstance(i, OID) and i.type_name == "item" for i, _ in rows)

    def test_autocommit_update_fires_the_rule(self, inventory_server):
        server, orders = inventory_server
        with connect(server) as client:
            ((item, _),) = client.query(
                "select i, quantity(i) for each item i where quantity(i) = 5000"
            )
            client.bind("i", item)
            client.execute("set quantity(:i) = 100;")
        assert orders == [(item, 5000 - 100)]

    def test_query_rejects_multi_statement_scripts(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            with pytest.raises(ServerError, match="exactly one select"):
                client.query("select i for each item i; select i for each item i;")

    def test_bind_round_trips_plain_values(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            client.bind("q", 4999)
            ((item, _),) = client.query(
                "select i, quantity(i) for each item i where quantity(i) = 5000"
            )
            client.bind("i", item)
            client.execute("set quantity(:i) = :q;")
            rows = client.query("select quantity(:i)")
            assert rows == [(4999,)]


class TestTransactions:
    def _item(self, client, quantity=5000):
        ((item, _),) = client.query(
            "select i, quantity(i) for each item i "
            f"where quantity(i) = {quantity}"
        )
        client.bind("i", item)
        return item

    def test_buffered_until_commit_and_isolated(self, inventory_server):
        server, orders = inventory_server
        with connect(server) as writer, connect(server) as reader:
            item = self._item(writer)
            reader.bind("i", item)
            writer.begin()
            results = writer.execute("set quantity(:i) = 100;")
            assert results == [BUFFERED]
            # nothing applied yet: the other session still sees 5000
            assert reader.query("select quantity(:i)") == [(5000,)]
            assert orders == []
            committed = writer.commit()
            assert committed == [None]  # a set statement has no result
            assert reader.query("select quantity(:i)") == [(100,)]
        assert orders == [(item, 4900)]

    def test_deferred_netting_dip_below_then_recover(self, inventory_server):
        server, orders = inventory_server
        with connect(server) as client:
            self._item(client)
            with client.transaction():
                client.execute("set quantity(:i) = 10;")
                client.execute("set quantity(:i) = 4000;")
            # net change stayed above threshold: deferred check fires nothing
            assert orders == []
            assert client.query("select quantity(:i)") == [(4000,)]

    def test_rollback_discards_the_buffer(self, inventory_server):
        server, orders = inventory_server
        with connect(server) as client:
            self._item(client)
            client.begin()
            client.execute("set quantity(:i) = 100;")
            client.rollback()
            assert client.query("select quantity(:i)") == [(5000,)]
        assert orders == []

    def test_transaction_context_rolls_back_on_error(self, inventory_server):
        server, orders = inventory_server
        with connect(server) as client:
            self._item(client)
            with pytest.raises(RuntimeError, match="boom"):
                with client.transaction():
                    client.execute("set quantity(:i) = 100;")
                    raise RuntimeError("boom")
            assert client.query("select quantity(:i)") == [(5000,)]
        assert orders == []

    def test_failed_commit_rolls_back_whole_transaction(self, inventory_server):
        server, orders = inventory_server
        with connect(server) as client:
            self._item(client)
            client.begin()
            client.execute("set quantity(:i) = 100;")
            client.execute("set quantity(:missing) = 1;")  # fails at replay
            with pytest.raises(RemoteError):
                client.commit()
            # the first buffered statement was rolled back with the rest
            assert client.query("select quantity(:i)") == [(5000,)]
            # and the transaction scope is closed (no half-open buffer)
            with pytest.raises(RemoteError, match="commit without begin"):
                client.commit()
        assert orders == []

    def test_commit_without_begin_is_a_remote_error(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            with pytest.raises(RemoteError, match="commit without begin") as info:
                client.commit()
            assert info.value.remote_type == "TransactionError"
            with pytest.raises(RemoteError, match="rollback without begin"):
                client.rollback()
            client.begin()
            with pytest.raises(RemoteError, match="already in progress"):
                client.begin()


class TestErrors:
    def test_errors_keep_the_connection_alive(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            with pytest.raises(RemoteError):
                client.execute("select nonsense gibberish;")
            # the connection survived the request-level failure
            assert client.ping() >= 0.0
            assert client.query("select threshold(i) for each item i")

    def test_unknown_op_is_reported(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            with pytest.raises(RemoteError, match="unknown op") as info:
                client._call("dance")
            assert info.value.remote_type == "ProtocolError"

    def test_execute_needs_a_string_script(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            with pytest.raises(RemoteError, match="string 'script'"):
                client._call("execute", script=42)
            with pytest.raises(RemoteError, match="string 'name'"):
                client._call("bind", name="", value=1)

    def test_amos_options_conflict_with_existing_database(self):
        engine, _ = make_inventory_engine()
        with pytest.raises(ServerError, match="amos_options"):
            AmosServer(amos=engine.amos, mode="naive")

    def test_start_twice_rejected(self, inventory_server):
        server, _ = inventory_server
        with pytest.raises(ServerError, match="already started"):
            server.start()


class TestObservability:
    def test_stats_counters_and_sessions(self, inventory_server):
        server, _ = inventory_server
        session_closed = threading.Event()
        server.sessions.add_close_listener(lambda _s, _r: session_closed.set())
        with connect(server) as client:
            with client.transaction():
                client.execute(
                    "select i for each item i;"
                )  # buffered select, replayed at commit
            stats = client.stats()
            assert stats["counters"]["server.commits"] == 1
            assert stats["counters"]["server.statements_buffered"] == 1
            assert stats["gauges"]["server.connections"]["value"] == 1
            assert stats["address"] == list(server.address)
            session = stats["sessions"][client.session_id]
            assert session["counters"]["commits"] == 1
        # after disconnect the session moves to the closed history; the
        # close listener fires the moment the registry drops it
        assert session_closed.wait(timeout=5.0), "session close never signalled"
        closed = server.sessions.recent_closed()
        assert any(snap["id"] == "s1" for snap in closed)

    def test_commit_span_wraps_the_check_phase(self, inventory_server):
        server, _ = inventory_server
        with connect(server) as client:
            session_id = client.session_id
            with client.transaction():
                client.execute("select i for each item i;")
        trace = server.last_commit_trace
        assert trace is not None and trace.name == "server.commit"
        assert trace.attributes["session"] == session_id
        assert trace.attributes["statements"] == 1
        assert trace.find("check_phase"), "check_phase must nest under the commit"

    def test_unobserved_server_skips_spans(self):
        engine, _ = make_inventory_engine()
        with AmosServer(amos=engine.amos, observe=False) as server:
            with connect(server) as client:
                with client.transaction():
                    client.execute("select i for each item i;")
            assert server.last_commit_trace is None
            assert server.stats()["counters"]["server.commits"] == 1


class FakeClock:
    """A hand-advanced monotonic clock for deterministic reaping tests."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestReaping:
    def test_idle_sessions_are_reaped(self):
        engine, _ = make_inventory_engine()
        clock = FakeClock()
        # reap_interval keeps the background reaper thread out of the
        # way; the test drives reaping by hand through the fake clock
        server = AmosServer(
            amos=engine.amos, idle_timeout=30.0, reap_interval=3600.0,
            clock=clock,
        )
        server.start()
        try:
            client = connect(server)
            client.connect()
            assert client.ping() >= 0.0
            assert server.reap_idle_sessions() == 0  # fresh: not idle yet
            clock.advance(31.0)
            assert server.reap_idle_sessions() == 1
            assert len(server.sessions) == 0, "idle session was not reaped"
            stats = server.stats()
            assert stats["counters"]["server.sessions_reaped"] >= 1
            assert any(
                snap["closed_reason"] == "reaped"
                for snap in stats["closed_sessions"]
            )
            with pytest.raises((ProtocolError, ServerError, OSError)):
                client.ping()
                client.ping()  # second call sees the dropped connection
        finally:
            server.stop()

    def test_busy_sessions_survive(self):
        engine, _ = make_inventory_engine()
        clock = FakeClock()
        server = AmosServer(
            amos=engine.amos, idle_timeout=30.0, reap_interval=3600.0,
            clock=clock,
        )
        server.start()
        try:
            with connect(server) as client:
                for _ in range(6):
                    clock.advance(20.0)
                    client.ping()  # keeps touching the session
                    assert server.reap_idle_sessions() == 0
                assert len(server.sessions) == 1
        finally:
            server.stop()
