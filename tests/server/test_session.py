"""Session state machine and the idle-reaping registry (no sockets)."""

from repro.server.session import Session, SessionRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSession:
    def test_transaction_scope(self):
        session = Session("s1")
        assert not session.in_transaction
        session.begin()
        session.buffer.append("stmt-a")
        session.buffer.append("stmt-b")
        taken = session.take_buffer()
        assert taken == ["stmt-a", "stmt-b"]
        assert not session.in_transaction
        assert session.buffer == []

    def test_abort_reports_dropped_count(self):
        session = Session("s1")
        session.begin()
        session.buffer.extend(["a", "b", "c"])
        assert session.abort() == 3
        assert not session.in_transaction
        assert session.buffer == []

    def test_begin_resets_stale_buffer(self):
        session = Session("s1")
        session.begin()
        session.buffer.append("old")
        session.begin()
        assert session.buffer == []

    def test_idle_tracking_with_injected_clock(self):
        clock = FakeClock()
        session = Session("s1", clock=clock)
        clock.advance(5)
        assert session.idle_seconds() == 5
        session.touch()
        clock.advance(2)
        assert session.idle_seconds() == 2

    def test_snapshot_shape(self):
        clock = FakeClock()
        session = Session("s1", address=("127.0.0.1", 4747), clock=clock)
        session.begin()
        session.buffer.append("x")
        session.counters["statements"] = 4
        snap = session.snapshot()
        assert snap["id"] == "s1"
        assert snap["address"] == ["127.0.0.1", 4747]
        assert snap["in_transaction"] is True
        assert snap["buffered_statements"] == 1
        assert snap["counters"]["statements"] == 4
        assert "s1" in repr(session)


class TestSessionRegistry:
    def test_open_assigns_sequential_ids(self):
        registry = SessionRegistry()
        a, b = registry.open(), registry.open()
        assert (a.id, b.id) == ("s1", "s2")
        assert registry.get("s1") is a
        assert len(registry) == 2
        assert set(registry.active()) == {a, b}

    def test_close_is_idempotent_and_archives(self):
        registry = SessionRegistry()
        session = registry.open()
        assert registry.close(session.id, reason="bye") is session
        assert registry.close(session.id) is None
        assert registry.get(session.id) is None
        (snapshot,) = registry.recent_closed()
        assert snapshot["id"] == session.id
        assert snapshot["closed_reason"] == "bye"

    def test_reap_respects_idle_timeout(self):
        clock = FakeClock()
        registry = SessionRegistry(idle_timeout=10, clock=clock)
        idle = registry.open()
        busy = registry.open()
        clock.advance(11)
        busy.touch()
        reaped = registry.reap()
        assert reaped == [idle]
        assert registry.get(idle.id) is None
        assert registry.get(busy.id) is busy
        (snapshot,) = registry.recent_closed()
        assert snapshot["closed_reason"] == "reaped"

    def test_reap_without_timeout_is_a_noop(self):
        clock = FakeClock()
        registry = SessionRegistry(clock=clock)
        registry.open()
        clock.advance(1e9)
        assert registry.reap() == []
        assert len(registry) == 1

    def test_closed_history_is_bounded(self):
        registry = SessionRegistry(keep_closed=2)
        for _ in range(4):
            registry.close(registry.open().id)
        closed = registry.recent_closed()
        assert [snap["id"] for snap in closed] == ["s3", "s4"]
        assert "idle_timeout" in repr(registry)
