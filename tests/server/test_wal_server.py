"""End-to-end durability through the server: commit, restart, recover.

The server owns the WAL lifecycle (``docs/SERVER.md``): with
``wal_dir`` set, ``start()`` recovers the log before accepting
connections and every acked commit is durable.  These tests drive the
full loop over real sockets — including a group-commit batch, whose
batch boundary rides the commit record — then boot a SECOND server
over the same directory from a fresh schema bootstrap and assert the
recovered database answers queries identically.
"""

import pytest

from repro.bench.workload import build_inventory
from repro.server import AmosClient, AmosServer

SEED = 21
MAX_STOCK = 5000


def fresh_workload(n_items=3):
    workload = build_inventory(n_items, seed=SEED)
    workload.activate()
    return workload


def start_server(workload, wal_dir, **options):
    server = AmosServer(
        amos=workload.amos, wal_dir=str(wal_dir), **options
    )
    server.start()
    return server


class TestServerDurability:
    def test_commits_survive_a_server_restart(self, tmp_path):
        first = fresh_workload()
        server = start_server(first, tmp_path)
        host, port = server.address
        with AmosClient(host, port) as client:
            client.bind("i0", first.items[0])
            client.bind("i1", first.items[1])
            with client.transaction():
                client.execute("set quantity(:i0) = 120;")  # fires
            with client.transaction():
                client.execute("set quantity(:i1) = 450;")  # does not
        assert first.orders == [(first.items[0], MAX_STOCK - 120)]
        epoch = first.amos.storage.snapshot_epoch
        server.stop()  # detaches the wal

        # a "restart": same schema bootstrap (schema is code), same
        # wal directory, a brand-new process-worth of state
        second = fresh_workload()
        restarted = start_server(second, tmp_path)
        try:
            assert restarted.last_recovery is not None
            assert restarted.last_recovery.commits == 2
            assert (
                second.amos.snapshot_extensions()
                == first.amos.snapshot_extensions()
            )
            assert second.amos.storage.snapshot_epoch == epoch
            # the monitor set recovered too: the same query answers,
            # and a fresh wire commit still fires the rule
            host, port = restarted.address
            with AmosClient(host, port) as client:
                rows = dict(
                    client.query("select i, quantity(i) for each item i")
                )
                assert rows[second.items[0]] == 120
                assert rows[second.items[1]] == 450
                client.bind("i2", second.items[2])
                with client.transaction():
                    client.execute("set quantity(:i2) = 130;")
            assert second.orders == [(second.items[2], MAX_STOCK - 130)]
            stats = restarted.stats()
            assert stats["wal"] is not None
            assert stats["counters"]["wal.recovered_commits"] == 2
            assert stats["wal"]["appended_records"] >= 1  # the new commit
        finally:
            restarted.stop()

    def test_group_commit_batch_is_durable_with_its_boundary(self, tmp_path):
        import threading

        first = fresh_workload()
        server = start_server(first, tmp_path, group_commit=True)
        host, port = server.address
        n = 3
        errors = [None] * n
        buffered = threading.Barrier(n + 1)

        def member(index):
            try:
                with AmosClient(host, port, timeout=30.0) as client:
                    client.bind(f"i{index}", first.items[index])
                    client.begin()
                    client.execute(f"set quantity(:i{index}) = {120 + index};")
                    buffered.wait(timeout=30.0)
                    client.commit()
            except BaseException as exc:  # noqa: BLE001
                errors[index] = exc

        threads = [
            threading.Thread(target=member, args=(index,))
            for index in range(n)
        ]
        with server._engine_lock:
            for thread in threads:
                thread.start()
            buffered.wait(timeout=30.0)
            import time

            deadline = time.monotonic() + 30.0
            while len(server._commit_queue) < n:
                assert time.monotonic() < deadline
                time.sleep(0.002)
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == [None] * n
        server.stop()

        second = fresh_workload()
        restarted = start_server(second, tmp_path)
        try:
            report = restarted.last_recovery
            assert report.commits == 1  # ONE merged commit record
            assert (
                second.amos.snapshot_extensions()
                == first.amos.snapshot_extensions()
            )
            # the batch boundary survived in the log
            last = list(second.amos.wal.records())[-1]
            assert last.group == {"members": n, "applied": n}
        finally:
            restarted.stop()

    def test_wal_server_refuses_a_corrupt_log(self, tmp_path):
        from repro.errors import WalCorruptionError

        first = fresh_workload()
        server = start_server(first, tmp_path)
        host, port = server.address
        with AmosClient(host, port) as client:
            client.bind("i0", first.items[0])
            with client.transaction():
                client.execute("set quantity(:i0) = 120;")
            with client.transaction():
                client.execute("set quantity(:i0) = 450;")
        server.stop()
        # flip a payload byte of the FIRST record: with a valid record
        # after it, this is mid-log corruption — NOT a torn tail, which
        # only the last record of the last segment can be
        from repro.storage.wal import HEADER_SIZE

        (segment,) = [p for p in tmp_path.iterdir() if p.suffix == ".log"]
        blob = bytearray(segment.read_bytes())
        blob[HEADER_SIZE + 2] ^= 0x01
        segment.write_bytes(bytes(blob))

        second = fresh_workload()
        broken = AmosServer(amos=second.amos, wal_dir=str(tmp_path))
        with pytest.raises(WalCorruptionError):
            broken.start()
