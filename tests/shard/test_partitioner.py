"""Property suite for the hash partitioner (repro.shard.partitioner).

The sharded check phase stands on three routing invariants:

* **true partition** — ``split`` is disjoint and covering: every row of
  every Δ-set lands on exactly one shard, none invented, none dropped;
* **deterministic across processes** — routing depends only on
  ``(relation key columns, row)``, never on process state, so a forked
  worker agrees with the leader without exchanging anything;
* **boundary totality** — ``partition_map ∪ foreign_map`` reproduces
  the input row for row, so a worker that applies its foreign slice and
  seeds its own never loses a boundary-crossing tuple.

All three are pinned with hypothesis over random Δ-maps of mixed-arity
rows.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.delta import DeltaSet
from repro.errors import ShardError
from repro.shard.partitioner import DEFAULT_KEY_COLUMNS, HashPartitioner

scalars = st.one_of(
    st.integers(-50, 50),
    st.text(max_size=4),
    st.booleans(),
    st.none(),
)
rows = st.lists(scalars, min_size=1, max_size=4).map(tuple)


@st.composite
def delta_sets(draw):
    """A valid Δ-set: plus and minus disjoint."""
    universe = draw(st.lists(rows, max_size=12, unique=True))
    split = draw(st.integers(0, len(universe)))
    return DeltaSet(universe[:split], universe[split:])


delta_maps = st.dictionaries(
    st.sampled_from(["quantity", "supplies", "items", "link"]),
    delta_sets(),
    max_size=4,
)

shard_counts = st.sampled_from([1, 2, 3, 4, 7])


class TestTruePartition:
    @settings(max_examples=200, deadline=None)
    @given(shards=shard_counts, delta_map=delta_maps)
    def test_split_is_disjoint_and_covering(self, shards, delta_map):
        partitioner = HashPartitioner(shards)
        pieces = partitioner.split(delta_map)
        assert len(pieces) == shards
        for name, delta in delta_map.items():
            plus_slices = [p[name].plus for p in pieces if name in p]
            minus_slices = [p[name].minus for p in pieces if name in p]
            # covering: the union of the slices is exactly the input
            assert frozenset().union(*plus_slices, frozenset()) == delta.plus
            assert frozenset().union(*minus_slices, frozenset()) == delta.minus
            # disjoint: no row appears on two shards
            assert sum(map(len, plus_slices)) == len(delta.plus)
            assert sum(map(len, minus_slices)) == len(delta.minus)

    @settings(max_examples=200, deadline=None)
    @given(shards=shard_counts, delta_map=delta_maps)
    def test_empty_slices_are_dropped_not_invented(self, shards, delta_map):
        partitioner = HashPartitioner(shards)
        for piece in partitioner.split(delta_map):
            for name, delta in piece.items():
                assert name in delta_map
                assert not delta.empty

    @settings(max_examples=100, deadline=None)
    @given(delta_map=delta_maps)
    def test_one_shard_owns_everything(self, delta_map):
        partitioner = HashPartitioner(1)
        pieces = partitioner.split(delta_map)
        expected = {n: d for n, d in delta_map.items() if not d.empty}
        assert pieces == [expected]
        assert partitioner.partition_map(delta_map, 0) == expected
        assert partitioner.foreign_map(delta_map, 0) == {}


class TestDeterminism:
    @settings(max_examples=200, deadline=None)
    @given(shards=shard_counts, row=rows)
    def test_two_independent_partitioners_agree(self, shards, row):
        # the leader and a forked worker never exchange routing state:
        # a fresh instance must reproduce the same decision
        a = HashPartitioner(shards)
        b = HashPartitioner(shards)
        assert a.shard_of("quantity", row) == b.shard_of("quantity", row)
        assert 0 <= a.shard_of("quantity", row) < shards

    @settings(max_examples=100, deadline=None)
    @given(row=rows)
    def test_routing_is_per_relation_key_not_name(self, row):
        # with identical key columns the relation NAME must not matter:
        # a stored function row routes with its subject OID regardless
        # of which function it belongs to
        partitioner = HashPartitioner(4)
        assert partitioner.shard_of("quantity", row) == partitioner.shard_of(
            "supplies", row
        )

    def test_key_columns_change_routing_input(self):
        partitioner = HashPartitioner(4, {"pairs": (1,)})
        assert partitioner.key_of("pairs", ("a", "b")) == ("b",)
        assert partitioner.key_of("other", ("a", "b")) == ("a",)

    @settings(max_examples=100, deadline=None)
    @given(row=rows)
    def test_narrow_rows_fall_back_to_whole_row(self, row):
        # declared key wider than the row: routing stays total
        partitioner = HashPartitioner(4, {"wide": (0, 5)})
        assert partitioner.key_of("wide", row) == (
            row if len(row) <= 5 else (row[0], row[5])
        )
        assert 0 <= partitioner.shard_of("wide", row) < 4


class TestRegistrationStability:
    def test_reregistration_with_same_key_is_noop(self):
        partitioner = HashPartitioner(4)
        assert partitioner.register("quantity", (0,)) == (0,)
        # rule re-activation re-registers every influent; same columns
        # must be accepted silently
        assert partitioner.register("quantity", (0,)) == (0,)
        assert partitioner.registered() == {"quantity": (0,)}

    def test_conflicting_reregistration_raises(self):
        partitioner = HashPartitioner(4)
        partitioner.register("quantity", (0,))
        with pytest.raises(ShardError):
            partitioner.register("quantity", (0, 1))
        # and the original registration survives the failed attempt
        assert partitioner.key_columns_of("quantity") == (0,)

    def test_default_key_is_the_subject_column(self):
        partitioner = HashPartitioner(2)
        assert partitioner.key_columns_of("anything") == DEFAULT_KEY_COLUMNS

    def test_empty_key_rejected(self):
        partitioner = HashPartitioner(2)
        with pytest.raises(ShardError):
            partitioner.register("quantity", ())

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardError):
            HashPartitioner(0)

    @settings(max_examples=100, deadline=None)
    @given(shards=shard_counts, row=rows)
    def test_registration_matches_default_routing(self, shards, row):
        # registering the default key must not move any row
        unregistered = HashPartitioner(shards)
        registered = HashPartitioner(shards)
        registered.register("quantity")
        assert unregistered.shard_of("quantity", row) == registered.shard_of(
            "quantity", row
        )


class TestBoundaryTotality:
    @settings(max_examples=200, deadline=None)
    @given(
        shards=shard_counts,
        delta_map=delta_maps,
        data=st.data(),
    )
    def test_partition_plus_foreign_is_the_input(self, shards, delta_map, data):
        """The boundary-Δ complement never drops a tuple."""
        shard = data.draw(st.integers(0, shards - 1))
        partitioner = HashPartitioner(shards)
        owned = partitioner.partition_map(delta_map, shard)
        foreign = partitioner.foreign_map(delta_map, shard)
        for name, delta in delta_map.items():
            own = owned.get(name, DeltaSet())
            far = foreign.get(name, DeltaSet())
            # disjoint halves...
            assert not (own.plus & far.plus)
            assert not (own.minus & far.minus)
            # ...that reassemble the input row for row
            assert own.plus | far.plus == delta.plus
            assert own.minus | far.minus == delta.minus

    def test_out_of_range_shard_rejected(self):
        partitioner = HashPartitioner(2)
        with pytest.raises(ShardError):
            partitioner.partition_map({}, 2)
        with pytest.raises(ShardError):
            partitioner.foreign_map({}, -1)
