"""Pool soak: a seeded random storm of commits, kills, and rollbacks.

One pooled engine (``policy="fanout"``, shards=2) and a serial twin
replay the same randomly generated script of operations:

* ``churn``  — touch one random item (a tiny two-row commit),
* ``swing``  — flip one item across the reorder threshold,
* ``massive``— shift every item's quantity (a wide commit),
* ``kill``   — SIGKILL a random live worker between commits,
* ``rollback`` — open a transaction, mutate, roll it back.

After every committed step the pooled database must be bit-identical
to the serial twin (extensions + rule firings); kills must be healed
by in-place respawns.  This is the kill-and-resync loop CI runs as its
pool-soak cell (see .github/workflows/ci.yml) at a *logged* random
seed — on failure, rerun with ``REPRO_SOAK_SEED=<seed>``.

``REPRO_SOAK_ITERATIONS`` scales the storm (default 40, CI runs more).
"""

import gc
import os
import random
import signal

import pytest

from repro.bench.workload import build_inventory

N_ITEMS = 10
ITERATIONS = int(os.environ.get("REPRO_SOAK_ITERATIONS", "40"))
SEED = os.environ.get("REPRO_SOAK_SEED")


@pytest.fixture(autouse=True)
def _reap_pools():
    yield
    gc.collect()


def build_pair():
    pooled = build_inventory(
        N_ITEMS, mode="incremental", explain=True, shards=2,
        shard_options={"policy": "fanout"},
    )
    serial = build_inventory(N_ITEMS, mode="incremental", explain=True, shards=1)
    for workload in (pooled, serial):
        workload.activate()
    return pooled, serial


def test_pool_survives_a_random_storm():
    seed = int(SEED) if SEED is not None else random.randrange(2**32)
    print(f"\nREPRO_SOAK_SEED={seed} REPRO_SOAK_ITERATIONS={ITERATIONS}")
    rng = random.Random(seed)
    pooled, serial = build_pair()
    engine = pooled.amos.rules.engine
    kills = 0
    try:
        for step in range(ITERATIONS):
            op = rng.choice(("churn", "churn", "swing", "massive",
                             "kill", "rollback"))
            if op == "kill":
                pids = engine.pool_pids
                if pids:
                    try:
                        os.kill(pids[rng.randrange(len(pids))], signal.SIGKILL)
                        kills += 1
                    except ProcessLookupError:
                        pass
                continue
            if op == "rollback":
                item = rng.randrange(N_ITEMS)
                value = rng.randrange(300)
                for workload in (pooled, serial):
                    workload.amos.begin()
                    workload.set_quantity(workload.items[item], value)
                    workload.amos.rollback()
            elif op == "churn":
                item = rng.randrange(N_ITEMS)
                value = rng.randrange(150, 300)  # stays above threshold
                for workload in (pooled, serial):
                    workload.set_quantity(workload.items[item], value)
            elif op == "swing":
                item = rng.randrange(N_ITEMS)
                below = rng.random() < 0.5
                for workload in (pooled, serial):
                    workload.touch_one_item(item, below=below)
            else:  # massive
                delta = rng.choice((-40, -20, 25, 50))
                for workload in (pooled, serial):
                    workload.massive_change(delta)
            label = f"seed={seed} step={step} op={op}"
            assert (
                pooled.amos.snapshot_extensions()
                == serial.amos.snapshot_extensions()
            ), label
            assert (
                [a for _, a in pooled.orders] == [a for _, a in serial.orders]
            ), label
        # kills were healed in place — a discard would mean the pool
        # paid a full re-fork for a survivable fault
        stats = engine.pool_stats
        assert stats["discards"] == 0, f"seed={seed}"
        assert stats["respawns"] <= kills, f"seed={seed}"
    finally:
        engine.close_pool()
