"""Integration tests for the sharded check phase (repro.shard.engine).

Covers the wiring the oracle ring does not: pool lifecycle (fork at
first wave, death at phase end), the shards=1 serial identity, mode
validation, group commit partitioning the merged batch once, the WAL
writing ONE commit record regardless of shard count, a single snapshot
epoch per commit, and the fleet-wide observability counters.
"""

import pickle

import pytest

from repro.algebra.delta import DeltaSet
from repro.amos.oid import OID
from repro.amosql.interpreter import AmosqlEngine
from repro.bench.workload import build_inventory
from repro.errors import RuleError, ShardError
from repro.rules.engines import IncrementalEngine
from repro.shard.engine import ShardedEngine


def sharded_inventory(n_items=6, shards=2, **options):
    workload = build_inventory(n_items, explain=True, shards=shards, **options)
    workload.activate()
    return workload


class TestWiring:
    def test_shards_flag_reaches_the_engine(self):
        workload = sharded_inventory(shards=3)
        assert workload.amos.shards == 3
        engine = workload.amos.rules.engine
        assert isinstance(engine, ShardedEngine)
        assert engine.shards == 3
        assert engine.partitioner.shards == 3
        # the merge argument requires guarded negatives — always on
        assert engine.guard_negatives is True

    def test_shards_one_is_the_plain_serial_engine(self):
        workload = build_inventory(4, shards=1)
        engine = workload.amos.rules.engine
        assert isinstance(engine, IncrementalEngine)
        assert not isinstance(engine, ShardedEngine)

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(RuleError):
            build_inventory(2, shards=0)

    def test_sharding_requires_incremental_mode(self):
        with pytest.raises(RuleError):
            AmosqlEngine(mode="naive", shards=2)
        with pytest.raises(RuleError):
            AmosqlEngine(mode="hybrid", shards=2)

    def test_amosql_engine_accepts_shards(self):
        engine = AmosqlEngine(shards=2)
        assert engine.amos.shards == 2


class TestSerialEquivalenceSmoke:
    """One directed spot check; the hypothesis ring is the real pin
    (tests/oracle/test_shard_equivalence.py)."""

    def test_orders_and_extensions_match_serial(self):
        serial = build_inventory(10, explain=True)
        serial.activate()
        sharded = sharded_inventory(10, shards=2)
        for workload in (serial, sharded):
            workload.touch_one_item(0, below=True)
            workload.touch_one_item(3, below=True)
            workload.massive_change(-60)
        assert [a for _, a in serial.orders] == [a for _, a in sharded.orders]
        assert (
            serial.amos.snapshot_extensions()
            == sharded.amos.snapshot_extensions()
        )

    def test_rollback_leaves_no_trace(self):
        workload = sharded_inventory()
        before = workload.amos.snapshot_extensions()
        workload.amos.begin()
        workload.set_quantity(workload.items[0], 1)
        workload.amos.rollback()
        assert workload.amos.snapshot_extensions() == before
        assert workload.orders == []
        # the engine is still live: a probe commit fires normally
        workload.touch_one_item(0, below=True)
        assert len(workload.orders) == 1


class TestPoolLifecycle:
    def test_workers_live_only_during_the_check_phase(self):
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        seen_pids = []
        workload.amos.create_procedure(
            "snoop", ("item",), lambda item: seen_pids.append(engine.pool_pids)
        )
        AmosqlEngine(workload.amos).execute(
            """
            create rule snoop_rule() as
                when for each item i where quantity(i) < 0
                do snoop(i);
            activate snoop_rule();
            """
        )
        assert engine.pool_pids == []
        workload.set_quantity(workload.items[0], -1)
        # the action ran DURING the check phase: the pool was live then
        assert seen_pids and len(seen_pids[0]) == 2
        # ...and is torn down by the phase's finally
        assert engine.pool_pids == []

    def test_finish_phase_is_idempotent(self):
        workload = sharded_inventory()
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        engine.finish_phase()
        engine.finish_phase()
        assert engine.pool_pids == []

    def test_rule_toggles_between_commits(self):
        workload = sharded_inventory()
        workload.touch_one_item(0, below=True)
        workload.deactivate()
        workload.touch_one_item(1, below=True)  # unmonitored: no order
        workload.activate()
        workload.touch_one_item(2, below=True)
        assert len(workload.orders) == 2


class TestGroupCommit:
    def test_group_commit_runs_one_sharded_check_phase(self, tmp_path):
        workload = sharded_inventory(shards=2, observe=True)
        workload.amos.open_wal(str(tmp_path))
        wal = workload.amos.wal
        before = wal.appended_records

        units = [
            (lambda i: (lambda: workload.set_quantity(workload.items[i], 1)))(i)
            for i in range(3)
        ]
        outcomes = workload.amos.apply_group(units)
        assert [o.ok for o in outcomes] == [True, True, True]
        # ONE wal record for the whole batch, carrying the boundary
        assert wal.appended_records == before + 1
        last = list(wal.records())[-1]
        assert last.kind == "commit"
        assert last.group == {"members": 3, "applied": 3}
        # the merged batch partitioned once: a single wave served it
        stats = workload.amos.rules.last_check_stats()
        assert stats["counters"]["shard.waves"] == 1
        assert len(workload.orders) == 3
        workload.amos.detach_wal()


class TestDurabilityAndEpochs:
    def test_one_wal_commit_record_regardless_of_shard_count(self, tmp_path):
        workload = sharded_inventory(shards=4)
        workload.amos.open_wal(str(tmp_path))
        wal = workload.amos.wal
        before = wal.appended_records
        with workload.amos.transaction():
            for item in workload.items[:4]:
                workload.set_quantity(item, 1)
        assert wal.appended_records == before + 1
        last = list(wal.records())[-1]
        assert last.kind == "commit"
        assert last.epoch == workload.amos.snapshot_epoch
        workload.amos.detach_wal()

    def test_one_epoch_per_sharded_commit(self):
        workload = sharded_inventory(shards=2)
        workload.amos.storage.auto_publish = True
        workload.amos.storage.publish_snapshot()
        epoch = workload.amos.snapshot_epoch
        workload.touch_one_item(0, below=True)
        assert workload.amos.snapshot_epoch == epoch + 1
        workload.touch_one_item(1, below=True)
        assert workload.amos.snapshot_epoch == epoch + 2

    def test_wal_recovery_replays_into_a_sharded_database(self, tmp_path):
        live = sharded_inventory(shards=2)
        live.amos.open_wal(str(tmp_path))
        live.touch_one_item(0, below=True)
        live.amos.detach_wal()

        restored = build_inventory(6, explain=True, shards=2)
        restored.activate()
        report = restored.amos.open_wal(str(tmp_path))
        assert report.rows_applied >= 1
        assert (
            restored.amos.snapshot_extensions()
            == live.amos.snapshot_extensions()
        )
        restored.amos.detach_wal()


class TestObservability:
    def test_fleet_wide_counters(self):
        workload = sharded_inventory(shards=2, observe=True)
        workload.touch_one_item(0, below=True)
        stats = workload.amos.rules.last_check_stats()
        counters = stats["counters"]
        assert counters["shard.waves"] >= 1
        assert counters["shard.exchange_bytes"] > 0
        # a cancellation at the merge barrier would be a correctness
        # bug — the counter must stay silent
        assert "shard.merge_cancellations" not in counters
        histograms = stats["histograms"]
        assert "shard.0.check_ms" in histograms
        assert "shard.1.check_ms" in histograms

    def test_trace_survives_sharding(self):
        workload = sharded_inventory(shards=2)
        workload.touch_one_item(0, below=True)
        report = workload.amos.rules.last_report
        assert report is not None
        trace = report.iterations[0].trace
        assert trace is not None and trace.executions


class TestPickleContract:
    """Shard workers ship these across process pipes; the frozen
    ``__setattr__`` broke pickle's default slot restore (regression)."""

    def test_delta_set_roundtrip(self):
        delta = DeltaSet([(1, "a")], [(2, "b")])
        clone = pickle.loads(pickle.dumps(delta))
        assert clone == delta
        assert clone.plus == delta.plus and clone.minus == delta.minus

    def test_oid_roundtrip(self):
        oid = OID(7, "item")
        clone = pickle.loads(pickle.dumps(oid))
        assert clone == oid and clone.type_name == "item"

    def test_delta_map_roundtrip(self):
        wave = {"quantity": DeltaSet([(OID(1, "item"), 5)], [(OID(1, "item"), 9)])}
        clone = pickle.loads(pickle.dumps(wave))
        assert clone == wave


class TestShardErrors:
    def test_engine_rejects_zero_shards(self):
        workload = build_inventory(2)
        with pytest.raises(ShardError):
            ShardedEngine(
                workload.amos.storage, workload.amos.program, shards=0
            )
