"""Integration tests for the sharded check phase (repro.shard.engine).

Covers the wiring the oracle ring does not: the persistent pool's
lifecycle (fork at the first fanned-out wave, survival across commits,
replica sync on reuse, explicit teardown), the adaptive
serial-vs-fanout policy and ``shards="auto"`` resolution, the shards=1
serial identity, mode validation, group commit syncing once and
partitioning the merged batch once, the WAL writing ONE commit record
regardless of shard count, a single snapshot epoch per commit, and the
fleet-wide observability counters.

Most helpers pin ``policy="fanout"``: the tiny deltas these directed
tests commit would route serial under the default auto policy, and the
point here is to exercise the pooled path.  ``TestAutoPolicy`` covers
the routing itself.
"""

import gc
import pickle

import pytest

from repro.algebra.delta import DeltaSet
from repro.amos.oid import OID
from repro.amosql.interpreter import AmosqlEngine
from repro.bench.workload import build_inventory
from repro.errors import RuleError, ShardError
from repro.rules.engines import IncrementalEngine
from repro.rules.manager import resolve_auto_shards
from repro.shard.engine import ShardedEngine


@pytest.fixture(autouse=True)
def _reap_pools():
    """Collect engine↔db listener cycles so pools left behind by a
    test are closed (ShardPool.__del__) before the next one runs."""
    yield
    gc.collect()


def sharded_inventory(n_items=6, shards=2, policy="fanout", **options):
    shard_options = dict(options.pop("shard_options", None) or {})
    shard_options.setdefault("policy", policy)
    workload = build_inventory(
        n_items, explain=True, shards=shards,
        shard_options=shard_options, **options,
    )
    workload.activate()
    return workload


class TestWiring:
    def test_shards_flag_reaches_the_engine(self):
        workload = sharded_inventory(shards=3)
        assert workload.amos.shards == 3
        engine = workload.amos.rules.engine
        assert isinstance(engine, ShardedEngine)
        assert engine.shards == 3
        assert engine.partitioner.shards == 3
        # the merge argument requires guarded negatives — always on
        assert engine.guard_negatives is True

    def test_shards_one_is_the_plain_serial_engine(self):
        workload = build_inventory(4, shards=1)
        engine = workload.amos.rules.engine
        assert isinstance(engine, IncrementalEngine)
        assert not isinstance(engine, ShardedEngine)

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(RuleError):
            build_inventory(2, shards=0)

    def test_sharding_requires_incremental_mode(self):
        with pytest.raises(RuleError):
            AmosqlEngine(mode="naive", shards=2)
        with pytest.raises(RuleError):
            AmosqlEngine(mode="hybrid", shards=2)

    def test_amosql_engine_accepts_shards(self):
        engine = AmosqlEngine(shards=2)
        assert engine.amos.shards == 2


class TestSerialEquivalenceSmoke:
    """One directed spot check; the hypothesis ring is the real pin
    (tests/oracle/test_shard_equivalence.py)."""

    def test_orders_and_extensions_match_serial(self):
        serial = build_inventory(10, explain=True)
        serial.activate()
        sharded = sharded_inventory(10, shards=2)
        for workload in (serial, sharded):
            workload.touch_one_item(0, below=True)
            workload.touch_one_item(3, below=True)
            workload.massive_change(-60)
        assert [a for _, a in serial.orders] == [a for _, a in sharded.orders]
        assert (
            serial.amos.snapshot_extensions()
            == sharded.amos.snapshot_extensions()
        )

    def test_rollback_leaves_no_trace(self):
        workload = sharded_inventory()
        before = workload.amos.snapshot_extensions()
        workload.amos.begin()
        workload.set_quantity(workload.items[0], 1)
        workload.amos.rollback()
        assert workload.amos.snapshot_extensions() == before
        assert workload.orders == []
        # the engine is still live: a probe commit fires normally
        workload.touch_one_item(0, below=True)
        assert len(workload.orders) == 1


class TestPoolLifecycle:
    def test_pool_persists_across_commits(self):
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        assert engine.pool_pids == []  # lazy: no fan-out yet
        workload.touch_one_item(0, below=True)
        first = engine.pool_pids
        assert len(first) == 2
        # SAME processes serve the next commit — no re-fork
        workload.touch_one_item(1, below=True)
        assert engine.pool_pids == first
        assert engine.pool_stats["forks"] == 2
        assert engine.pool_stats["reuse_hits"] == 1
        engine.close_pool()
        assert engine.pool_pids == []

    def test_pool_is_live_during_the_check_phase(self):
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        seen_pids = []
        workload.amos.create_procedure(
            "snoop", ("item",), lambda item: seen_pids.append(engine.pool_pids)
        )
        AmosqlEngine(workload.amos).execute(
            """
            create rule snoop_rule() as
                when for each item i where quantity(i) < 0
                do snoop(i);
            activate snoop_rule();
            """
        )
        assert engine.pool_pids == []
        workload.set_quantity(workload.items[0], -1)
        # the action ran DURING the check phase: the pool was live then
        assert seen_pids and len(seen_pids[0]) == 2
        # ...and SURVIVES the phase's finally, idling for the next commit
        assert engine.pool_pids == seen_pids[0]
        engine.close_pool()

    def test_finish_phase_keeps_the_pool(self):
        workload = sharded_inventory()
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        pids = engine.pool_pids
        engine.finish_phase()
        engine.finish_phase()  # idempotent, and the workers idle on
        assert engine.pool_pids == pids
        engine.close_pool()
        assert engine.pool_pids == []

    def test_rule_toggles_between_commits(self):
        workload = sharded_inventory()
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        pooled = engine.pool_pids
        workload.deactivate()  # rebuild: the old network's pool dies
        assert engine.pool_pids == []
        workload.touch_one_item(1, below=True)  # unmonitored: no order
        workload.activate()
        workload.touch_one_item(2, below=True)
        assert len(workload.orders) == 2
        # a fresh fleet, not the pre-toggle one
        assert engine.pool_pids and engine.pool_pids != pooled
        engine.close_pool()

    def test_rollback_discards_the_pool_lazily(self):
        # immediate-processing-style phantom waves: simulate by running
        # a pooled phase inside an explicit txn and rolling it back
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        pids = engine.pool_pids
        workload.amos.begin()
        workload.set_quantity(workload.items[1], 1)
        workload.amos.rollback()
        # deferred mode: no waves ran for the aborted txn, pool survives
        assert engine.pool_pids == pids
        # but phantom waves WOULD be caught: fake one and watch the
        # next phase re-fork
        engine._txn_waves = 1
        workload.touch_one_item(2, below=True)
        assert engine.pool_pids != pids
        assert engine.pool_stats["discards"] >= 1
        engine.close_pool()

    def test_catalog_change_re_forks_the_pool(self):
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        pids = engine.pool_pids
        workload.amos.storage.create_relation("side_table", 2)
        assert engine._pool_stale
        workload.touch_one_item(1, below=True)
        assert engine.pool_pids != pids  # fresh fleet knows the relation
        engine.close_pool()


class TestGroupCommit:
    def test_group_commit_runs_one_sharded_check_phase(self, tmp_path):
        workload = sharded_inventory(shards=2, observe=True)
        workload.amos.open_wal(str(tmp_path))
        wal = workload.amos.wal
        before = wal.appended_records

        units = [
            (lambda i: (lambda: workload.set_quantity(workload.items[i], 1)))(i)
            for i in range(3)
        ]
        outcomes = workload.amos.apply_group(units)
        assert [o.ok for o in outcomes] == [True, True, True]
        # ONE wal record for the whole batch, carrying the boundary
        assert wal.appended_records == before + 1
        last = list(wal.records())[-1]
        assert last.kind == "commit"
        assert last.group == {"members": 3, "applied": 3}
        # the merged batch partitioned once: a single wave served it
        stats = workload.amos.rules.last_check_stats()
        assert stats["counters"]["shard.waves"] == 1
        assert len(workload.orders) == 3
        workload.amos.detach_wal()

    def test_group_commit_pays_one_sync_per_batch(self):
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)  # fork the pool
        assert engine.pool_stats["resyncs"] == 0

        def unit(i):
            return lambda: workload.set_quantity(workload.items[i], 1)

        outcomes = workload.amos.apply_group([unit(i) for i in range(3)])
        assert all(o.ok for o in outcomes)
        # three members, ONE merged check phase, ONE replica sync
        assert engine.pool_stats["resyncs"] == 1
        assert engine.pool_stats["reuse_hits"] == 1
        # and the next batch reuses the same fleet again
        pids = engine.pool_pids
        outcomes = workload.amos.apply_group([unit(i) for i in range(3, 5)])
        assert all(o.ok for o in outcomes)
        assert engine.pool_pids == pids
        assert engine.pool_stats["resyncs"] == 2
        engine.close_pool()


class TestDurabilityAndEpochs:
    def test_one_wal_commit_record_regardless_of_shard_count(self, tmp_path):
        workload = sharded_inventory(shards=4)
        workload.amos.open_wal(str(tmp_path))
        wal = workload.amos.wal
        before = wal.appended_records
        with workload.amos.transaction():
            for item in workload.items[:4]:
                workload.set_quantity(item, 1)
        assert wal.appended_records == before + 1
        last = list(wal.records())[-1]
        assert last.kind == "commit"
        assert last.epoch == workload.amos.snapshot_epoch
        workload.amos.detach_wal()

    def test_one_epoch_per_sharded_commit(self):
        workload = sharded_inventory(shards=2)
        workload.amos.storage.auto_publish = True
        workload.amos.storage.publish_snapshot()
        epoch = workload.amos.snapshot_epoch
        workload.touch_one_item(0, below=True)
        assert workload.amos.snapshot_epoch == epoch + 1
        workload.touch_one_item(1, below=True)
        assert workload.amos.snapshot_epoch == epoch + 2

    def test_wal_recovery_replays_into_a_sharded_database(self, tmp_path):
        live = sharded_inventory(shards=2)
        live.amos.open_wal(str(tmp_path))
        live.touch_one_item(0, below=True)
        live.amos.detach_wal()

        restored = build_inventory(6, explain=True, shards=2)
        restored.activate()
        report = restored.amos.open_wal(str(tmp_path))
        assert report.rows_applied >= 1
        assert (
            restored.amos.snapshot_extensions()
            == live.amos.snapshot_extensions()
        )
        restored.amos.detach_wal()


class TestObservability:
    def test_fleet_wide_counters(self):
        workload = sharded_inventory(shards=2, observe=True)
        workload.touch_one_item(0, below=True)
        stats = workload.amos.rules.last_check_stats()
        counters = stats["counters"]
        assert counters["shard.waves"] >= 1
        assert counters["shard.exchange_bytes"] > 0
        # a cancellation at the merge barrier would be a correctness
        # bug — the counter must stay silent
        assert "shard.merge_cancellations" not in counters
        histograms = stats["histograms"]
        assert "shard.0.check_ms" in histograms
        assert "shard.1.check_ms" in histograms

    def test_trace_survives_sharding(self):
        workload = sharded_inventory(shards=2)
        workload.touch_one_item(0, below=True)
        report = workload.amos.rules.last_report
        assert report is not None
        trace = report.iterations[0].trace
        assert trace is not None and trace.executions


class TestPickleContract:
    """Shard workers ship these across process pipes; the frozen
    ``__setattr__`` broke pickle's default slot restore (regression)."""

    def test_delta_set_roundtrip(self):
        delta = DeltaSet([(1, "a")], [(2, "b")])
        clone = pickle.loads(pickle.dumps(delta))
        assert clone == delta
        assert clone.plus == delta.plus and clone.minus == delta.minus

    def test_oid_roundtrip(self):
        oid = OID(7, "item")
        clone = pickle.loads(pickle.dumps(oid))
        assert clone == oid and clone.type_name == "item"

    def test_delta_map_roundtrip(self):
        wave = {"quantity": DeltaSet([(OID(1, "item"), 5)], [(OID(1, "item"), 9)])}
        clone = pickle.loads(pickle.dumps(wave))
        assert clone == wave


class TestAutoPolicy:
    """The per-transaction serial-vs-fanout route (policy='auto')."""

    def test_small_transactions_route_serial(self):
        workload = sharded_inventory(shards=2, policy="auto")
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)
        # a two-row Δ is far below auto_min_rows: no fork, no pool
        assert engine.pool_pids == []
        assert engine.pool_stats["auto_serial"] == 1
        assert engine.pool_stats["auto_fanout"] == 0
        assert len(workload.orders) == 1  # the serial path still fired

    def test_large_spread_transactions_fan_out(self):
        workload = sharded_inventory(
            8, shards=2, policy="auto",
            shard_options={"auto_min_rows": 4},
        )
        engine = workload.amos.rules.engine
        workload.massive_change(-1)  # touches every item: 16 Δ rows
        assert engine.pool_stats["auto_fanout"] == 1
        assert len(engine.pool_pids) == 2
        # ...and the next small commit routes serial on the idle pool
        workload.touch_one_item(0, below=True)
        assert engine.pool_stats["auto_serial"] == 1
        engine.close_pool()

    def test_route_is_sticky_for_the_whole_phase(self):
        # cascading waves of a serial-routed phase stay serial even if
        # a later wave is large: the decision is made once, at seeding
        workload = sharded_inventory(
            shards=2, policy="auto",
            shard_options={"auto_min_rows": 10**9},
        )
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)  # order cascade: 2 waves
        assert engine.pool_stats["auto_serial"] == 1
        assert engine.pool_stats["auto_fanout"] == 0
        assert engine.pool_pids == []

    def test_policy_serial_never_forks(self):
        workload = sharded_inventory(8, shards=2, policy="serial")
        engine = workload.amos.rules.engine
        workload.massive_change(-1)
        assert engine.pool_pids == []
        assert engine.pool_stats["forks"] == 0

    def test_auto_shards_resolution(self):
        # "auto" resolves from the host: 1 on non-fork platforms or
        # non-incremental modes, min(cpus, 8) otherwise
        import os
        resolved = resolve_auto_shards("incremental")
        if hasattr(os, "fork"):
            assert 1 <= resolved <= 8
            assert resolved == min(os.cpu_count() or 1, 8)
        else:
            assert resolved == 1
        assert resolve_auto_shards("naive") == 1
        assert resolve_auto_shards("hybrid") == 1

    def test_shards_auto_is_the_default(self):
        engine = AmosqlEngine(mode="incremental")
        assert engine.amos.shards == resolve_auto_shards("incremental")
        # naive mode under the default silently resolves to 1 — no error
        naive = AmosqlEngine(mode="naive")
        assert naive.amos.shards == 1

    def test_explicit_auto_string_accepted(self):
        engine = AmosqlEngine(mode="incremental", shards="auto")
        assert engine.amos.shards == resolve_auto_shards("incremental")


class TestReplicaSync:
    def test_backlog_drains_on_reuse(self):
        workload = sharded_inventory(shards=2)
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)  # forks the pool
        # the pooled commit's own net Δ is buffered for the next sync
        assert len(engine._backlog) == 1
        workload.touch_one_item(1, below=True)  # ships it, buffers #2
        assert len(engine._backlog) == 1
        assert engine.pool_stats["sync_bytes"] > 0
        assert engine.pool_stats["resyncs"] == 1
        engine.close_pool()

    def test_backlog_overflow_discards_the_pool(self):
        workload = sharded_inventory(
            shards=2, shard_options={"sync_backlog_limit": 2},
        )
        engine = workload.amos.rules.engine
        workload.touch_one_item(0, below=True)  # forks the pool
        assert engine.pool_pids
        # route the pool around: serial commits pile up in the backlog
        engine.policy = "serial"
        for i in range(3):
            workload.set_quantity(workload.items[i], 200 + i)
        # ...until replaying beats re-forking and the pool is dropped
        assert engine.pool_pids == []
        assert engine.pool_stats["discards"] == 1
        # the next fanned-out phase forks a fresh, current fleet
        engine.policy = "fanout"
        workload.touch_one_item(0, below=True)
        assert len(workload.orders) == 2
        assert engine.pool_pids
        engine.close_pool()

    def test_sync_is_idempotent_under_set_semantics(self):
        # rows a worker already applied through waves re-arrive via the
        # backlog; set semantics make the overlap harmless
        workload = sharded_inventory(shards=2)
        serial = build_inventory(6, explain=True, shards=1)
        serial.activate()
        for w in (workload, serial):
            w.touch_one_item(0, below=True)
            w.touch_one_item(0, below=False)
            w.touch_one_item(0, below=True)
        assert (
            workload.amos.snapshot_extensions()
            == serial.amos.snapshot_extensions()
        )
        assert [a for _, a in workload.orders] == [a for _, a in serial.orders]
        workload.amos.rules.engine.close_pool()


class TestShardErrors:
    def test_engine_rejects_zero_shards(self):
        workload = build_inventory(2)
        with pytest.raises(ShardError):
            ShardedEngine(
                workload.amos.storage, workload.amos.program, shards=0
            )

    def test_engine_rejects_unknown_policy(self):
        workload = build_inventory(2)
        with pytest.raises(ShardError):
            ShardedEngine(
                workload.amos.storage, workload.amos.program,
                shards=2, policy="sometimes",
            )

    def test_manager_rejects_garbage_shard_strings(self):
        with pytest.raises(RuleError):
            build_inventory(2, shards="many")
