"""Unit tests for the Database: transactions, rollback, delta accumulation."""

import pytest

from repro.errors import (
    DuplicateRelationError,
    TransactionError,
    UnknownRelationError,
)
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", 2)
    return database


class TestCatalog:
    def test_create_and_fetch(self, db):
        assert db.relation("r").arity == 2
        assert db.has_relation("r")
        assert not db.has_relation("s")

    def test_duplicate_rejected(self, db):
        with pytest.raises(DuplicateRelationError):
            db.create_relation("r", 3)

    def test_unknown_rejected(self, db):
        with pytest.raises(UnknownRelationError):
            db.relation("nope")

    def test_drop(self, db):
        db.drop_relation("r")
        assert not db.has_relation("r")
        with pytest.raises(UnknownRelationError):
            db.drop_relation("r")


class TestImplicitTransactions:
    def test_insert_outside_transaction_commits(self, db):
        assert db.insert("r", (1, 2)) is True
        assert (1, 2) in db.relation("r")
        assert not db.in_transaction

    def test_duplicate_insert_reports_no_change(self, db):
        db.insert("r", (1, 2))
        assert db.insert("r", (1, 2)) is False

    def test_delete_missing_reports_no_change(self, db):
        assert db.delete("r", (9, 9)) is False


class TestExplicitTransactions:
    def test_commit_keeps_changes(self, db):
        db.begin()
        db.insert("r", (1, 2))
        db.commit()
        assert (1, 2) in db.relation("r")

    def test_rollback_undoes_changes(self, db):
        db.insert("r", (0, 0))
        db.begin()
        db.insert("r", (1, 2))
        db.delete("r", (0, 0))
        db.rollback()
        assert (0, 0) in db.relation("r")
        assert (1, 2) not in db.relation("r")

    def test_rollback_restores_exact_state_after_mixed_ops(self, db):
        db.insert("r", (1, 1))
        before = db.relation("r").rows()
        db.begin()
        db.insert("r", (2, 2))
        db.delete("r", (2, 2))
        db.delete("r", (1, 1))
        db.insert("r", (1, 1))
        db.insert("r", (3, 3))
        db.rollback()
        assert db.relation("r").rows() == before

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.rollback()

    def test_context_manager_commits(self, db):
        with db.transaction():
            db.insert("r", (1, 2))
        assert (1, 2) in db.relation("r")

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(ValueError):
            with db.transaction():
                db.insert("r", (1, 2))
                raise ValueError("boom")
        assert (1, 2) not in db.relation("r")

    def test_log_truncated_after_commit(self, db):
        with db.transaction():
            db.insert("r", (1, 2))
        assert len(db.log) == 0


class TestDeltaAccumulation:
    def test_unmonitored_relation_accumulates_nothing(self, db):
        db.begin()
        db.insert("r", (1, 2))
        assert db.peek_deltas() == {}
        db.commit()

    def test_monitored_insert_and_delete(self, db):
        db.monitor("r")
        db.begin()
        db.insert("r", (1, 2))
        delta = db.delta_of("r")
        assert delta.plus == {(1, 2)}
        db.delete("r", (1, 2))
        assert db.delta_of("r").empty  # logical cancellation
        db.commit()

    def test_paper_min_stock_update_counter_update(self, db):
        """Section 4.1: set twice back to the original value -> empty delta."""
        db.monitor("r")
        db.insert("r", ("item1", 100))
        db.begin()
        # set min_stock(:item1) = 150
        db.delete("r", ("item1", 100))
        db.insert("r", ("item1", 150))
        assert db.delta_of("r").plus == {("item1", 150)}
        assert db.delta_of("r").minus == {("item1", 100)}
        # set min_stock(:item1) = 100
        db.delete("r", ("item1", 150))
        db.insert("r", ("item1", 100))
        assert db.delta_of("r").empty
        db.commit()

    def test_take_deltas_clears(self, db):
        db.monitor("r")
        db.begin()
        db.insert("r", (1, 2))
        taken = db.take_deltas()
        assert taken["r"].plus == {(1, 2)}
        assert db.peek_deltas() == {}
        db.commit()

    def test_rollback_clears_deltas(self, db):
        db.monitor("r")
        db.begin()
        db.insert("r", (1, 2))
        db.rollback()
        assert db.peek_deltas() == {}

    def test_monitor_is_reference_counted(self, db):
        db.monitor("r")
        db.monitor("r")
        db.unmonitor("r")
        assert db.is_monitored("r")
        db.unmonitor("r")
        assert not db.is_monitored("r")


class TestCheckHooks:
    def test_hook_runs_before_commit_completes(self, db):
        seen = []
        db.add_check_hook(lambda database: seen.append(database.peek_deltas()))
        db.monitor("r")
        with db.transaction():
            db.insert("r", (1, 2))
        assert seen and seen[0]["r"].plus == {(1, 2)}

    def test_failing_hook_rolls_back(self, db):
        def hook(database):
            raise RuntimeError("condition check failed")

        db.add_check_hook(hook)
        db.begin()
        db.insert("r", (1, 2))
        with pytest.raises(RuntimeError):
            db.commit()
        assert (1, 2) not in db.relation("r")
        assert not db.in_transaction

    def test_remove_hook(self, db):
        seen = []
        hook = lambda database: seen.append(1)  # noqa: E731
        db.add_check_hook(hook)
        db.remove_check_hook(hook)
        with db.transaction():
            db.insert("r", (1, 2))
        assert seen == []

    def test_statistics(self, db):
        with db.transaction():
            db.insert("r", (1, 2))
        stats = db.statistics
        assert stats["transactions"] == 1
        assert stats["events"] == 1
