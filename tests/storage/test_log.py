"""Unit tests for the undo/redo log."""

from repro.storage.log import EventKind, PhysicalEvent, UndoRedoLog


class TestEventKind:
    def test_inversion(self):
        assert EventKind.INSERT.inverted() is EventKind.DELETE
        assert EventKind.DELETE.inverted() is EventKind.INSERT


class TestPhysicalEvent:
    def test_inverted_keeps_payload(self):
        event = PhysicalEvent(EventKind.INSERT, "r", (1, 2), 7)
        inverted = event.inverted()
        assert inverted.kind is EventKind.DELETE
        assert inverted.relation == "r"
        assert inverted.row == (1, 2)

    def test_str_matches_paper_notation(self):
        event = PhysicalEvent(EventKind.DELETE, "min_stock", ("item1", 100), 0)
        assert str(event) == "-(min_stock, ('item1', 100))"


class TestUndoRedoLog:
    def test_append_assigns_increasing_sequence(self):
        log = UndoRedoLog()
        first = log.append(EventKind.INSERT, "r", (1,))
        second = log.append(EventKind.DELETE, "r", (1,))
        assert second.sequence == first.sequence + 1
        assert len(log) == 2

    def test_events_since_savepoint(self):
        log = UndoRedoLog()
        log.append(EventKind.INSERT, "r", (1,))
        savepoint = log.savepoint()
        log.append(EventKind.INSERT, "r", (2,))
        events = log.events_since(savepoint)
        assert [event.row for event in events] == [(2,)]

    def test_undo_events_reversed_and_inverted(self):
        log = UndoRedoLog()
        savepoint = log.savepoint()
        log.append(EventKind.INSERT, "r", (1,))
        log.append(EventKind.DELETE, "r", (2,))
        undo = log.undo_events(savepoint)
        assert [(event.kind, event.row) for event in undo] == [
            (EventKind.INSERT, (2,)),
            (EventKind.DELETE, (1,)),
        ]

    def test_truncate(self):
        log = UndoRedoLog()
        log.append(EventKind.INSERT, "r", (1,))
        savepoint = log.savepoint()
        log.append(EventKind.INSERT, "r", (2,))
        log.truncate(savepoint)
        assert len(log) == 1
        assert [event.row for event in log] == [(1,)]
