"""Tests for savepoints and data persistence."""

import pytest

from repro.amos.oid import OID
from repro.errors import StorageError, TransactionError
from repro.storage import persistence
from repro.storage.database import Database


class TestSavepoints:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_relation("r", 2)
        database.insert("r", (0, 0))
        return database

    def test_rollback_to_savepoint(self, db):
        db.begin()
        db.insert("r", (1, 1))
        savepoint = db.savepoint()
        db.insert("r", (2, 2))
        db.delete("r", (0, 0))
        db.rollback_to(savepoint)
        assert db.relation("r").rows() == {(0, 0), (1, 1)}
        db.commit()
        assert db.relation("r").rows() == {(0, 0), (1, 1)}

    def test_deltas_corrected_by_partial_rollback(self, db):
        db.monitor("r")
        db.begin()
        db.insert("r", (1, 1))
        savepoint = db.savepoint()
        db.insert("r", (2, 2))
        db.rollback_to(savepoint)
        assert db.delta_of("r").plus == {(1, 1)}
        db.commit()

    def test_savepoint_outside_transaction_rejected(self, db):
        with pytest.raises(TransactionError):
            db.savepoint()
        with pytest.raises(TransactionError):
            db.rollback_to(0)

    def test_invalid_savepoint_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.rollback_to(99)
        db.rollback()

    def test_nested_savepoints(self, db):
        db.begin()
        first = db.savepoint()
        db.insert("r", (1, 1))
        second = db.savepoint()
        db.insert("r", (2, 2))
        db.rollback_to(second)
        assert (1, 1) in db.relation("r")
        db.rollback_to(first)
        assert (1, 1) not in db.relation("r")
        db.commit()


class TestStoragePersistence:
    def make_db(self):
        db = Database()
        db.create_relation("q", 2, ["key", "value"])
        db.create_relation("tagged", 2)
        db.insert("q", (1, "one"))
        db.insert("q", (2, "two"))
        db.insert("tagged", (OID(3, "item"), True))
        return db

    def test_dump_restore_roundtrip(self):
        source = self.make_db()
        snapshot = persistence.dump(source)
        target = Database()
        target.create_relation("q", 2, ["key", "value"])
        target.create_relation("tagged", 2)
        loaded = persistence.restore(target, snapshot)
        assert loaded == 3
        assert target.relation("q").rows() == source.relation("q").rows()
        assert target.relation("tagged").rows() == source.relation("tagged").rows()

    def test_oids_preserved(self):
        snapshot = persistence.dump(self.make_db())
        target = Database()
        target.create_relation("q", 2)
        target.create_relation("tagged", 2)
        persistence.restore(target, snapshot)
        (row,) = target.relation("tagged").rows()
        assert isinstance(row[0], OID)
        assert row[0].id == 3 and row[0].type_name == "item"

    def test_restore_replaces_existing_rows(self):
        snapshot = persistence.dump(self.make_db())
        target = self.make_db()
        target.insert("q", (99, "stale"))
        persistence.restore(target, snapshot)
        assert (99, "stale") not in target.relation("q")

    def test_unknown_relation_rejected_unless_created(self):
        snapshot = persistence.dump(self.make_db())
        target = Database()
        with pytest.raises(StorageError):
            persistence.restore(target, snapshot)
        persistence.restore(target, snapshot, create_missing=True)
        assert target.relation("q").column_names == ("key", "value")

    def test_arity_mismatch_rejected(self):
        snapshot = persistence.dump(self.make_db())
        target = Database()
        target.create_relation("q", 3)
        target.create_relation("tagged", 2)
        with pytest.raises(StorageError):
            persistence.restore(target, snapshot)

    def test_unsupported_value_rejected(self):
        db = Database()
        db.create_relation("r", 1)
        db.insert("r", (object(),))
        with pytest.raises(StorageError):
            persistence.dump(db)

    def test_unsupported_value_error_names_relation_and_column(self):
        db = Database()
        db.create_relation("readings", 3)
        db.insert("readings", (1, "fine", frozenset({3})))
        with pytest.raises(StorageError) as info:
            persistence.dump(db)
        message = str(info.value)
        assert "relation 'readings'" in message
        assert "at column 2" in message
        assert "frozenset" in message

    def test_oid_shared_across_relations_round_trips(self):
        """One OID referenced from several relations stays ONE identity."""
        shared = OID(7, "item")
        db = Database()
        db.create_relation("quantity", 2)
        db.create_relation("max_stock", 2)
        db.create_relation("supplies", 2)
        db.insert("quantity", (shared, 120))
        db.insert("max_stock", (shared, 5000))
        db.insert("supplies", (OID(8, "supplier"), shared))

        target = Database()
        persistence.restore(target, persistence.dump(db), create_missing=True)
        ((q_oid, q),) = target.relation("quantity").rows()
        ((m_oid, m),) = target.relation("max_stock").rows()
        ((s_oid, supplied),) = target.relation("supplies").rows()
        assert (q, m) == (120, 5000)
        assert q_oid == m_oid == supplied == shared
        assert q_oid.type_name == supplied.type_name == "item"
        assert s_oid == OID(8, "supplier")

    def test_bad_format_version_rejected(self):
        target = Database()
        with pytest.raises(StorageError):
            persistence.restore(target, {"format": 99, "relations": {}})

    def test_file_roundtrip(self, tmp_path):
        source = self.make_db()
        path = str(tmp_path / "dump.json")
        persistence.save(source, path)
        target = Database()
        loaded = persistence.load(target, path, create_missing=True)
        assert loaded == 3
        assert target.relation("q").rows() == source.relation("q").rows()


class TestAmosPersistence:
    def test_save_load_with_schema_recreation(self, tmp_path):
        from tests.conftest import make_inventory_engine

        engine, _ = make_inventory_engine()
        engine.execute("set quantity(:item1) = 777;")
        path = str(tmp_path / "inventory.json")
        engine.amos.save_data(path)

        fresh, orders = make_inventory_engine()
        fresh.amos.load_data(path)
        item1 = engine.get("item1")
        assert fresh.amos.value("quantity", item1) == 777
        assert fresh.amos.value("threshold", item1) == 140

    def test_oid_counter_advances_past_loaded(self, tmp_path):
        from tests.conftest import make_inventory_engine

        engine, _ = make_inventory_engine()
        path = str(tmp_path / "inventory.json")
        engine.amos.save_data(path)

        fresh, _ = make_inventory_engine()
        fresh.amos.load_data(path)
        loaded_max = max(oid.id for oid in fresh.amos.objects_of("item"))
        new_object = fresh.amos.create_object("item")
        assert new_object.id > loaded_max

    def test_rules_fire_on_reloaded_data(self, tmp_path):
        from tests.conftest import make_inventory_engine

        engine, _ = make_inventory_engine()
        path = str(tmp_path / "inventory.json")
        engine.amos.save_data(path)

        fresh, orders = make_inventory_engine()
        fresh.amos.load_data(path)
        fresh.execute("activate monitor_items();")
        item1 = engine.get("item1")
        fresh.amos.set_value("quantity", (item1,), 100)
        assert orders == [(item1, 4900)]
