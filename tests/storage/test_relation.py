"""Unit tests for base relations and hash indexes."""

import pytest

from repro.errors import ArityError, SchemaError
from repro.storage.index import HashIndex
from repro.storage.relation import BaseRelation


class TestBaseRelation:
    def test_insert_returns_true_on_change(self):
        relation = BaseRelation("r", 2)
        assert relation.insert((1, 2)) is True
        assert relation.insert((1, 2)) is False  # set semantics: no-op
        assert len(relation) == 1

    def test_delete_returns_true_on_change(self):
        relation = BaseRelation("r", 2)
        relation.insert((1, 2))
        assert relation.delete((1, 2)) is True
        assert relation.delete((1, 2)) is False
        assert len(relation) == 0

    def test_contains_and_iter(self):
        relation = BaseRelation("r", 1)
        relation.insert((5,))
        assert (5,) in relation
        assert (6,) not in relation
        assert sorted(relation) == [(5,)]

    def test_arity_enforced(self):
        relation = BaseRelation("r", 2)
        with pytest.raises(ArityError):
            relation.insert((1,))
        with pytest.raises(ArityError):
            relation.delete((1, 2, 3))

    def test_arity_must_be_positive(self):
        with pytest.raises(SchemaError):
            BaseRelation("r", 0)

    def test_column_names_default_and_custom(self):
        assert BaseRelation("r", 2).column_names == ("c0", "c1")
        named = BaseRelation("r", 2, ["item", "qty"])
        assert named.column_names == ("item", "qty")
        with pytest.raises(SchemaError):
            BaseRelation("r", 2, ["only_one"])

    def test_rows_snapshot_is_independent(self):
        relation = BaseRelation("r", 1)
        relation.insert((1,))
        snapshot = relation.rows()
        relation.insert((2,))
        assert snapshot == frozenset({(1,)})

    def test_lookup_without_index_scans(self):
        relation = BaseRelation("r", 2)
        relation.insert((1, "a"))
        relation.insert((1, "b"))
        relation.insert((2, "a"))
        assert relation.lookup([0], (1,)) == {(1, "a"), (1, "b")}
        assert relation.lookup([1], ("a",)) == {(1, "a"), (2, "a")}
        assert relation.lookup([0, 1], (2, "a")) == {(2, "a")}
        assert relation.lookup([0], (9,)) == frozenset()

    def test_lookup_with_index_matches_scan(self):
        relation = BaseRelation("r", 2)
        rows = [(i % 5, i) for i in range(50)]
        relation.bulk_insert(rows)
        scan = relation.lookup([0], (3,))
        relation.create_index([0])
        assert relation.lookup([0], (3,)) == scan

    def test_index_maintained_across_updates(self):
        relation = BaseRelation("r", 2)
        relation.create_index([0])
        relation.insert((1, 10))
        relation.insert((1, 20))
        relation.delete((1, 10))
        assert relation.lookup([0], (1,)) == {(1, 20)}

    def test_create_index_is_idempotent(self):
        relation = BaseRelation("r", 2)
        first = relation.create_index([0])
        second = relation.create_index([0])
        assert first is second

    def test_index_column_out_of_range(self):
        relation = BaseRelation("r", 2)
        with pytest.raises(SchemaError):
            relation.create_index([2])

    def test_clear_empties_rows_and_indexes(self):
        relation = BaseRelation("r", 2)
        relation.create_index([0])
        relation.insert((1, 2))
        relation.clear()
        assert len(relation) == 0
        assert relation.lookup([0], (1,)) == frozenset()

    def test_bulk_insert_counts_new_rows(self):
        relation = BaseRelation("r", 1)
        assert relation.bulk_insert([(1,), (2,), (1,)]) == 2


class TestHashIndex:
    def test_probe_and_remove(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.add((1, "b"))
        assert index.probe((1,)) == {(1, "a"), (1, "b")}
        index.remove((1, "a"))
        assert index.probe((1,)) == {(1, "b")}
        index.remove((1, "b"))
        assert index.probe((1,)) == frozenset()
        assert list(index.keys()) == []

    def test_remove_missing_is_noop(self):
        index = HashIndex((0,))
        index.remove((1, "a"))  # must not raise
        assert len(index) == 0

    def test_multi_column_key(self):
        index = HashIndex((0, 2))
        index.add((1, "x", 9))
        assert index.probe((1, 9)) == {(1, "x", 9)}
        assert index.probe((1, 8)) == frozenset()

    def test_needs_columns(self):
        with pytest.raises(SchemaError):
            HashIndex(())
        with pytest.raises(SchemaError):
            HashIndex((0, 0))

    def test_len_counts_rows(self):
        index = HashIndex((0,))
        index.bulk_load([(1, 2), (1, 3), (2, 4)])
        assert len(index) == 3


class TestAutoIndexBudget:
    """The per-relation cap on automatically created indexes (the state
    views index any probed column set on demand; ad-hoc query mixes
    must not accumulate an unbounded set of maintained indexes)."""

    def wide_relation(self, arity=12, rows=30):
        relation = BaseRelation("wide", arity)
        relation.bulk_insert(
            [tuple(i * arity + c for c in range(arity)) for i in range(rows)]
        )
        return relation

    def test_budget_caps_auto_indexes(self):
        relation = self.wide_relation()
        for col in range(relation.AUTO_INDEX_BUDGET + 3):
            relation.create_index((col,), auto=True)
        assert len(relation.indexes) == relation.AUTO_INDEX_BUDGET

    def test_least_recently_probed_is_evicted(self):
        relation = self.wide_relation()
        for col in range(relation.AUTO_INDEX_BUDGET):
            relation.create_index((col,), auto=True)
        relation.lookup((0,), (0,))  # touch column 0: now most recent
        relation.create_index((relation.AUTO_INDEX_BUDGET,), auto=True)
        assert (0,) in relation.indexes  # survived
        assert (1,) not in relation.indexes  # the LRU victim

    def test_pinned_indexes_never_evicted(self):
        relation = self.wide_relation()
        relation.create_index((0,))  # explicit => pinned
        for col in range(1, relation.AUTO_INDEX_BUDGET + 4):
            relation.create_index((col,), auto=True)
        assert (0,) in relation.indexes
        assert len(relation.indexes) == relation.AUTO_INDEX_BUDGET + 1

    def test_explicit_create_promotes_auto_to_pinned(self):
        relation = self.wide_relation()
        relation.create_index((0,), auto=True)
        relation.create_index((0,))  # promote
        for col in range(1, relation.AUTO_INDEX_BUDGET + 4):
            relation.create_index((col,), auto=True)
        assert (0,) in relation.indexes

    def test_eviction_counter(self):
        from repro.obs import metrics

        relation = self.wide_relation()
        with metrics.collecting() as registry:
            for col in range(relation.AUTO_INDEX_BUDGET + 2):
                relation.create_index((col,), auto=True)
        assert registry.value("index.evictions") == 2

    def test_index_epoch_tracks_set_changes(self):
        relation = self.wide_relation()
        epoch = relation.index_epoch
        relation.create_index((0,), auto=True)
        assert relation.index_epoch == epoch + 1
        for col in range(1, relation.AUTO_INDEX_BUDGET + 1):
            relation.create_index((col,), auto=True)
        # the last creation also evicted one: +1 create, +1 evict each
        assert relation.index_epoch == epoch + relation.AUTO_INDEX_BUDGET + 2

    def test_evicted_prober_is_not_served_stale(self):
        relation = self.wide_relation()
        probe0 = relation.prober((0,), auto=True)
        assert probe0((0,))  # row 0 matches on column 0
        # churn enough other auto indexes to evict column 0's
        for col in range(1, relation.AUTO_INDEX_BUDGET + 2):
            relation.create_index((col,), auto=True)
        assert (0,) not in relation.indexes
        # a fresh prober must fall back to scan/recreate, not a dead index
        fresh = relation.prober((0,))
        assert fresh((0,)) == relation.lookup((0,), (0,))

    def test_prober_matches_lookup_with_and_without_metrics(self):
        from repro.obs import metrics

        relation = self.wide_relation()
        relation.create_index((1,))
        raw = relation.prober((1,))
        key = (1 + 0 * 12,)
        expected = relation.lookup((1,), key)
        assert raw(key) == expected
        with metrics.collecting() as registry:
            counted = relation.prober((1,))
            assert counted(key) == expected
        assert registry.value("index.probes") >= 1
