"""Unit tests for versioned snapshots: COW sharing, epochs, publication."""

import pytest

from repro.errors import SnapshotEpochError, UnknownRelationError
from repro.obs import metrics
from repro.storage import Database, DatabaseSnapshot, SnapshotView


def make_db(auto_publish=False):
    db = Database()
    db.auto_publish = auto_publish
    db.create_relation("a", 2)
    db.create_relation("b", 1)
    return db


class TestRelationFreeze:
    def test_freeze_is_cached_until_mutation(self):
        db = make_db()
        relation = db.relation("a")
        db.insert("a", (1, 2))
        first = relation.freeze()
        assert first == frozenset({(1, 2)})
        assert relation.freeze() is first  # cached, no copy
        assert relation.has_fresh_snapshot
        db.insert("a", (3, 4))
        assert not relation.has_fresh_snapshot
        second = relation.freeze()
        assert second == frozenset({(1, 2), (3, 4)})
        assert second is not first
        assert first == frozenset({(1, 2)})  # old frozenset untouched

    def test_version_bumps_on_real_changes_only(self):
        db = make_db()
        relation = db.relation("a")
        v0 = relation.version
        db.insert("a", (1, 2))
        assert relation.version == v0 + 1
        # duplicate insert is a set-semantics no-op: no version bump
        relation.insert((1, 2))
        assert relation.version == v0 + 1
        relation.delete((9, 9))  # absent: no-op
        assert relation.version == v0 + 1
        db.delete("a", (1, 2))
        assert relation.version == v0 + 2

    def test_clear_on_empty_relation_keeps_version(self):
        db = make_db()
        relation = db.relation("a")
        v0 = relation.version
        relation.clear()
        assert relation.version == v0


class TestPublishSnapshot:
    def test_epoch_advances_only_when_state_changed(self):
        db = make_db()
        first = db.publish_snapshot()
        assert first.epoch == 1
        again = db.publish_snapshot()
        assert again is first  # nothing changed: same object, same epoch
        db.insert("a", (1, 2))
        second = db.publish_snapshot()
        assert second.epoch == 2
        assert second.rows("a") == frozenset({(1, 2)})

    def test_unchanged_relations_share_frozensets_across_epochs(self):
        db = make_db()
        db.insert("a", (1, 2))
        db.insert("b", (7,))
        first = db.publish_snapshot()
        db.insert("a", (3, 4))
        second = db.publish_snapshot()
        # copy-on-write: only the dirty relation was refrozen
        assert second.rows("b") is first.rows("b")
        assert second.rows("a") is not first.rows("a")
        assert first.rows("a") == frozenset({(1, 2)})

    def test_no_publication_inside_a_transaction(self):
        db = make_db()
        before = db.publish_snapshot()
        db.begin()
        db.insert("a", (1, 2))
        # a mid-transaction publish returns the last published snapshot
        assert db.publish_snapshot() is before
        assert db.snapshot() is before
        db.commit()
        after = db.publish_snapshot()
        assert after.epoch == before.epoch + 1
        assert after.rows("a") == frozenset({(1, 2)})

    def test_auto_publish_on_commit_and_rollback(self):
        db = make_db(auto_publish=True)
        db.begin()
        db.insert("a", (1, 2))
        db.commit()
        committed = db.snapshot()
        assert committed.rows("a") == frozenset({(1, 2)})
        db.begin()
        db.insert("a", (3, 4))
        db.rollback()
        rolled = db.snapshot()
        # rollback restored the state; content equals the committed one
        assert rolled.rows("a") == frozenset({(1, 2)})

    def test_auto_publish_on_ddl(self):
        db = Database()
        db.auto_publish = True
        db.create_relation("t", 1)
        assert db.snapshot().has_relation("t")
        db.drop_relation("t")
        assert not db.snapshot().has_relation("t")

    def test_rolled_back_creation_does_not_leak_into_snapshot(self):
        db = make_db(auto_publish=True)
        db.insert("a", (1, 2))
        epoch = db.snapshot_epoch
        db.begin()
        db.insert("a", (5, 6))
        db.insert("b", (9,))
        db.rollback()
        snap = db.snapshot()
        assert snap.rows("a") == frozenset({(1, 2)})
        assert snap.rows("b") == frozenset()
        assert snap.epoch >= epoch

    def test_publish_metrics(self):
        db = make_db()
        db.insert("a", (1, 2))
        with metrics.collecting() as reg:
            snap = db.publish_snapshot()
            db.publish_snapshot()  # no-op: nothing changed
        assert reg.value("snapshot.publishes") == 1
        assert reg.gauges()["snapshot.epoch"]["value"] == snap.epoch


class TestDatabaseSnapshot:
    def test_reads(self):
        snap = DatabaseSnapshot(
            3, {"a": frozenset({(1, 2), (1, 3)}), "b": frozenset()}
        )
        assert snap.epoch == 3
        assert snap.relation_names() == ["a", "b"]
        assert snap.cardinality("a") == 2
        assert snap.contains("a", (1, 2))
        assert not snap.contains("a", (9, 9))
        assert snap.total_rows() == 2
        with pytest.raises(UnknownRelationError):
            snap.rows("missing")

    def test_lookup_builds_and_reuses_an_index(self):
        snap = DatabaseSnapshot(
            1, {"a": frozenset({(1, 2), (1, 3), (2, 2)})}
        )
        assert snap.lookup("a", (0,), (1,)) == frozenset({(1, 2), (1, 3)})
        assert snap.lookup("a", (0,), (5,)) == frozenset()
        assert snap.lookup("a", (1,), (2,)) == frozenset({(1, 2), (2, 2)})
        # cached per (relation, columns)
        assert ("a", (0,)) in snap._lookup_indexes
        assert ("a", (1,)) in snap._lookup_indexes

    def test_snapshot_view_is_a_state_view(self):
        snap = DatabaseSnapshot(1, {"a": frozenset({(1, 2)})})
        view = SnapshotView(snap)
        assert view.state == "new"
        assert view.rows("a") == frozenset({(1, 2)})
        assert view.contains("a", (1, 2))
        assert view.cardinality("a") == 1
        assert view.lookup("a", (0,), (1,)) == frozenset({(1, 2)})

    def test_snapshot_is_isolated_from_later_writes(self):
        db = make_db()
        db.insert("a", (1, 2))
        snap = db.publish_snapshot()
        db.insert("a", (3, 4))
        db.delete("a", (1, 2))
        assert snap.rows("a") == frozenset({(1, 2)})


class TestSnapshotHistory:
    """The bounded epoch ring behind ``query_ro(epoch=...)``."""

    def publish_epochs(self, db, n):
        """Publish ``n`` distinct epochs; returns the published list."""
        published = []
        for value in range(n):
            db.insert("a", (value, value))
            published.append(db.publish_snapshot())
        return published

    def test_defaults(self):
        db = make_db()
        assert db.snapshot_history == 8

    def test_ring_keeps_the_last_k_epochs_addressable(self):
        db = make_db()
        db.snapshot_history = 3
        published = self.publish_epochs(db, 5)
        assert db.snapshot_epochs() == (3, 4, 5)
        for snap in published[-3:]:
            assert db.snapshot_at(snap.epoch) is snap

    def test_evicted_epoch_raises_with_the_addressable_window(self):
        db = make_db()
        db.snapshot_history = 2
        self.publish_epochs(db, 4)
        with pytest.raises(SnapshotEpochError, match="evicted"):
            db.snapshot_at(1)
        with pytest.raises(SnapshotEpochError, match="3..4"):
            db.snapshot_at(2)

    def test_future_epoch_raises_not_yet_published(self):
        db = make_db()
        self.publish_epochs(db, 2)
        with pytest.raises(SnapshotEpochError, match="not been published"):
            db.snapshot_at(99)

    def test_history_of_one_keeps_only_the_latest(self):
        db = make_db()
        db.snapshot_history = 1
        published = self.publish_epochs(db, 3)
        assert db.snapshot_epochs() == (3,)
        assert db.snapshot_at(3) is published[-1]
        with pytest.raises(SnapshotEpochError):
            db.snapshot_at(2)

    def test_noop_publish_does_not_grow_the_ring(self):
        db = make_db()
        self.publish_epochs(db, 2)
        before = db.snapshot_epochs()
        db.publish_snapshot()  # nothing changed: same snapshot object
        assert db.snapshot_epochs() == before

    def test_pinned_snapshot_survives_eviction(self):
        # the ring bounds ADDRESSABILITY, not lifetime: a reader that
        # already holds a snapshot keeps reading it lock-free
        db = make_db()
        db.snapshot_history = 1
        (first, *_rest) = self.publish_epochs(db, 3)
        with pytest.raises(SnapshotEpochError):
            db.snapshot_at(first.epoch)
        assert first.rows("a") == frozenset({(0, 0)})


class TestSnapshotHistoryBoundaries:
    """Satellite coverage: the exact edges of the addressable window."""

    def publish_epochs(self, db, n):
        published = []
        for value in range(n):
            db.insert("a", (value, value))
            published.append(db.publish_snapshot())
        return published

    def test_epoch_exactly_at_the_window_edge_is_addressable(self):
        db = make_db()
        db.snapshot_history = 4
        self.publish_epochs(db, 10)
        oldest = db.snapshot_epochs()[0]
        assert oldest == 7  # epochs 7..10 addressable with history 4
        assert db.snapshot_at(oldest).epoch == oldest  # edge: succeeds
        with pytest.raises(SnapshotEpochError):
            db.snapshot_at(oldest - 1)  # one past the edge: evicted
        latest = db.snapshot_epochs()[-1]
        assert db.snapshot_at(latest).epoch == latest
        with pytest.raises(SnapshotEpochError):
            db.snapshot_at(latest + 1)  # one past the other edge

    def test_eviction_error_names_the_exact_addressable_window(self):
        db = make_db()
        db.snapshot_history = 3
        self.publish_epochs(db, 6)
        with pytest.raises(SnapshotEpochError) as info:
            db.snapshot_at(2)
        message = str(info.value)
        assert "4..6" in message  # the window, precisely
        assert "history size 3" in message

    def test_future_error_names_the_latest_epoch(self):
        db = make_db()
        self.publish_epochs(db, 3)
        with pytest.raises(SnapshotEpochError) as info:
            db.snapshot_at(50)
        assert "latest is 3" in str(info.value)

    def test_pinned_reads_across_a_history_evicting_commit_storm(self):
        # a reader pins one epoch, then a storm of commits evicts it
        # from the ring; the PINNED OBJECT keeps answering consistently
        # even though snapshot_at() for its epoch now fails
        db = make_db()
        db.snapshot_history = 2
        db.insert("a", (0, 0))
        pinned = db.publish_snapshot()
        pinned_rows = pinned.rows("a")
        for value in range(1, 40):  # storm: 39 evicting publications
            db.insert("a", (value, value))
            db.publish_snapshot()
        assert pinned.epoch not in db.snapshot_epochs()
        with pytest.raises(SnapshotEpochError, match="evicted"):
            db.snapshot_at(pinned.epoch)
        # the pinned snapshot is frozen at its epoch: same object, same
        # content, no torn reads, regardless of 39 later commits
        assert pinned.rows("a") is pinned_rows
        assert pinned.rows("a") == frozenset({(0, 0)})
        assert db.snapshot().rows("a") != pinned_rows

    def test_shrinking_history_trims_on_next_publication(self):
        db = make_db()
        db.snapshot_history = 8
        self.publish_epochs(db, 6)
        assert db.snapshot_epochs() == (0, 1, 2, 3, 4, 5, 6)
        db.snapshot_history = 2
        db.insert("a", (99, 99))
        db.publish_snapshot()
        assert db.snapshot_epochs() == (6, 7)

    def test_restore_epoch_refuses_to_move_backwards(self):
        db = make_db()
        self.publish_epochs(db, 3)
        with pytest.raises(SnapshotEpochError, match="only move forward"):
            db.restore_epoch(2)
        db.restore_epoch(9)
        assert db.snapshot_epoch == 9
        assert db.snapshot_epochs()[-1] == 9
