"""Unit tests for the write-ahead Δ-log (repro.storage.wal).

The fault-point and oracle coverage lives in ``tests/fault``; these
tests pin the log's own mechanics — record kinds, lsn monotonicity,
segment handling, corruption classification — and the AmosDatabase
wiring (rule/catalog records, group boundaries, read-only commits).
"""

import os

import pytest

from repro.algebra.delta import DeltaSet
from repro.amos.database import AmosDatabase
from repro.bench.workload import build_inventory
from repro.errors import WalCorruptionError, WalError
from repro.storage.wal import WalRecord, WriteAheadLog, recover


def make_amos():
    amos = AmosDatabase(explain=True)
    amos.create_type("item")
    amos.create_stored_function("quantity", ("item",), ("integer",))
    return amos


def walled(tmp_path, **options):
    amos = make_amos()
    amos.storage.auto_publish = True
    amos.storage.publish_snapshot()
    amos.open_wal(str(tmp_path), **options)
    return amos


class TestLogMechanics:
    def test_lsn_is_monotone_across_segments_and_reopens(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_bytes=128) as wal:
            for epoch in range(6):
                wal.append_commit(epoch + 1, {})
            assert wal.rotations > 0
            assert wal.next_lsn == 6
        with WriteAheadLog(str(tmp_path), segment_bytes=128) as wal:
            assert wal.next_lsn == 6
            record = wal.append_commit(7, {})
            assert record.lsn == 6
            lsns = [r.lsn for r in wal.records()]
            assert lsns == list(range(7))

    def test_records_survive_in_order_with_kinds(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append_catalog("create", "orders", 2, ("item", "amount"))
            wal.append_commit(1, {"orders": DeltaSet([(1, 2)], [])})
            wal.append_rule("activate", "monitor", (5,))
        with WriteAheadLog(str(tmp_path)) as wal:
            kinds = [r.kind for r in wal.records()]
            assert kinds == ["catalog", "commit", "rule"]
            catalog, commit, rule = wal.records()
            assert catalog.data == {
                "op": "create",
                "relation": "orders",
                "arity": 2,
                "columns": ["item", "amount"],
            }
            assert commit.epoch == 1
            assert commit.deltas["orders"].plus == frozenset({(1, 2)})
            assert rule.data["op"] == "activate"
            assert rule.data["rule"] == "monitor"

    def test_unknown_ops_are_rejected(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            with pytest.raises(WalError):
                wal.append_rule("toggle", "r")
            with pytest.raises(WalError):
                wal.append_catalog("rename", "r")

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append_commit(1, {})

    def test_corruption_in_non_last_segment_refuses_to_open(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_bytes=128) as wal:
            for epoch in range(6):
                wal.append_commit(epoch + 1, {})
            segments = wal.segment_paths()
            assert len(segments) > 1
        # flip one payload byte in the FIRST (sealed) segment
        first = segments[0]
        blob = bytearray(open(first, "rb").read())
        blob[-2] ^= 0x01
        with open(first, "wb") as handle:
            handle.write(blob)
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(str(tmp_path), segment_bytes=128)

    def test_torn_tail_in_last_segment_is_truncated_on_open(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append_commit(1, {})
            wal.append_commit(2, {})
            (segment,) = wal.segment_paths()
        whole = os.path.getsize(segment)
        with open(segment, "ab") as handle:
            handle.write(b"\xadW\x00\x00")  # torn header
        with WriteAheadLog(str(tmp_path)) as wal:
            assert wal.scan_report.truncated_bytes == 4
            assert wal.scan_report.records == 2
        assert os.path.getsize(segment) == whole

    def test_sequence_regression_is_corruption(self, tmp_path):
        from repro.storage.wal import encode_frame

        path = os.path.join(str(tmp_path), "wal-00000001.log")
        with open(path, "wb") as handle:
            handle.write(encode_frame(WalRecord("commit", 5, {"epoch": 1}).payload()))
            handle.write(encode_frame(WalRecord("commit", 3, {"epoch": 2}).payload()))
        with pytest.raises(WalCorruptionError, match="backwards"):
            WriteAheadLog(str(tmp_path))

    def test_fsync_off_still_appends(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync=False) as wal:
            wal.append_commit(1, {})
        with WriteAheadLog(str(tmp_path)) as wal:
            assert wal.scan_report.records == 1


class TestDatabaseWiring:
    def test_read_only_commits_are_not_logged(self, tmp_path):
        amos = walled(tmp_path)
        with amos.transaction():
            pass  # no physical events, no epoch movement
        assert amos.wal.appended_records == 0
        amos.detach_wal()

    def test_churn_commit_logs_an_empty_delta_with_its_epoch(self, tmp_path):
        amos = walled(tmp_path)
        item = amos.create_object("item")
        amos.set_value("quantity", (item,), 10)
        before = amos.wal.appended_records
        with amos.transaction():
            amos.set_value("quantity", (item,), 99)
            amos.set_value("quantity", (item,), 10)  # counter-update
        assert amos.wal.appended_records == before + 1
        last = list(amos.wal.records())[-1]
        assert last.kind == "commit"
        assert last.deltas == {}
        assert last.epoch == amos.snapshot_epoch
        amos.detach_wal()

    def test_group_commit_records_the_batch_boundary(self, tmp_path):
        amos = walled(tmp_path)
        items = amos.create_objects("item", 2)

        def unit_for(item, value):
            return lambda: amos.set_value("quantity", (item,), value)

        def failing():
            raise RuntimeError("member fails")

        outcomes = amos.apply_group(
            [unit_for(items[0], 1), failing, unit_for(items[1], 2)]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        last = list(amos.wal.records())[-1]
        assert last.group == {"members": 3, "applied": 2}
        # serial (non-group) commits carry no boundary
        amos.set_value("quantity", (items[0],), 7)
        assert list(amos.wal.records())[-1].group is None
        amos.detach_wal()

    def test_rule_toggles_recover_the_monitor_set(self, tmp_path):
        live = build_inventory(3, seed=5, explain=True)
        live.amos.storage.auto_publish = True
        live.amos.storage.publish_snapshot()
        live.amos.open_wal(str(tmp_path))
        # activation AFTER the wal attached → logged as a rule record
        live.activate()
        assert live.amos.storage.monitored_relations()
        live.amos.detach_wal()

        restored = build_inventory(3, seed=5, explain=True)
        restored.amos.storage.auto_publish = True
        restored.amos.storage.publish_snapshot()
        report = restored.amos.open_wal(str(tmp_path))
        assert report.rule_ops == 1
        assert restored.amos.rules.is_active("monitor_items")
        assert (
            restored.amos.storage.monitored_relations()
            == live.amos.storage.monitored_relations()
        )
        restored.amos.detach_wal()

    def test_catalog_records_replay_post_bootstrap_ddl(self, tmp_path):
        amos = walled(tmp_path)
        # storage-level DDL after the WAL attached
        amos.storage.create_relation("audit", 2)
        amos.storage.insert("audit", ("x", 1))
        amos.detach_wal()

        restored = make_amos()
        restored.storage.auto_publish = True
        restored.storage.publish_snapshot()
        report = restored.open_wal(str(tmp_path))
        assert report.catalog_ops == 1
        assert restored.storage.has_relation("audit")
        assert ("x", 1) in restored.storage.relation("audit")
        restored.detach_wal()

    def test_rollback_epoch_gaps_are_reproduced(self, tmp_path):
        amos = walled(tmp_path)
        item = amos.create_object("item")
        amos.set_value("quantity", (item,), 10)
        # a rolled-back transaction publishes a churn epoch that no
        # commit record carries — recovery must still land on the same
        # final epoch numbering
        try:
            with amos.transaction():
                amos.set_value("quantity", (item,), 55)
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        amos.set_value("quantity", (item,), 77)
        final_epoch = amos.snapshot_epoch
        amos.detach_wal()

        restored = make_amos()
        restored.storage.auto_publish = True
        restored.storage.publish_snapshot()
        restored.open_wal(str(tmp_path))
        assert restored.snapshot_epoch == final_epoch
        assert restored.snapshot_extensions() == amos.snapshot_extensions()
        restored.detach_wal()

    def test_oid_counter_advances_past_recovered_oids(self, tmp_path):
        amos = walled(tmp_path)
        items = amos.create_objects("item", 3)
        amos.detach_wal()

        restored = make_amos()
        restored.open_wal(str(tmp_path))
        fresh = restored.create_object("item")
        assert fresh.id > max(item.id for item in items)
        restored.detach_wal()

    def test_double_attach_is_rejected(self, tmp_path):
        amos = walled(tmp_path)
        with pytest.raises(Exception, match="already attached"):
            amos.attach_wal(object())
        amos.detach_wal()

    def test_recover_refuses_mid_transaction(self, tmp_path):
        amos = make_amos()
        amos.begin()
        with pytest.raises(WalError, match="mid-transaction"):
            recover(str(tmp_path), amos=amos)
        amos.rollback()

    def test_recover_factory_builds_the_database(self, tmp_path):
        amos = walled(tmp_path)
        item = amos.create_object("item")
        amos.set_value("quantity", (item,), 41)
        amos.detach_wal()

        restored = recover(str(tmp_path), factory=make_amos, attach=False)
        assert restored.get_values("quantity", (item,)) == frozenset({(41,)})
