"""Satellite: property tests for the WAL record codec.

Round-trip: any record payload built from the persistable value domain
(ints, floats including -0.0/±inf, str, bool, None, OIDs, empty
Δ-sets) survives frame → bytes → frame bit-exactly.  Corruption: ANY
single-byte flip anywhere in a frame is rejected by the magic, length,
or CRC32 check — never silently decoded.
"""

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.amos.oid import OID
from repro.algebra.delta import DeltaSet
from repro.errors import WalCorruptionError
from repro.storage.wal import (
    HEADER_SIZE,
    WalRecord,
    decode_delta_map,
    encode_delta_map,
    encode_frame,
    iter_frames,
)

MAX_EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "25"))

# the persistable value domain (matches persistence.encode_value)
scalar = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),  # includes -0.0 and ±inf
    st.text(max_size=20),
    st.booleans(),
    st.none(),
    st.builds(
        OID,
        st.integers(min_value=1, max_value=2**31),
        st.sampled_from(["item", "supplier", "order"]),
    ),
)
row = st.lists(scalar, min_size=1, max_size=4).map(tuple)


@st.composite
def delta_sets(draw):
    plus = draw(st.lists(row, max_size=4))
    minus = draw(st.lists(row, max_size=4))
    plus = {r for r in plus}
    # DeltaSet requires disjoint sides
    minus = {r for r in minus if r not in plus}
    return DeltaSet(plus, minus)


delta_maps = st.dictionaries(
    st.text(min_size=1, max_size=10), delta_sets(), max_size=3
)


def same_value(a, b):
    if isinstance(a, float) and isinstance(b, float):
        if math.isinf(a) or math.isinf(b):
            return a == b
        return a == b and math.copysign(1, a) == math.copysign(1, b)
    return a == b and type(a) is type(b)


def same_rows(rows_a, rows_b):
    ka = sorted(rows_a, key=repr)
    kb = sorted(rows_b, key=repr)
    return len(ka) == len(kb) and all(
        len(ra) == len(rb) and all(same_value(x, y) for x, y in zip(ra, rb))
        for ra, rb in zip(ka, kb)
    )


class TestRoundTrip:
    @given(deltas=delta_maps, epoch=st.integers(0, 2**31), lsn=st.integers(0, 2**31))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_commit_record_round_trips(self, deltas, epoch, lsn):
        record = WalRecord(
            "commit", lsn, {"epoch": epoch, "deltas": encode_delta_map(deltas)}
        )
        frame = encode_frame(record.payload())
        ((offset, payload),) = list(iter_frames(frame))
        assert offset == 0
        decoded = WalRecord.from_payload(payload)
        assert decoded.kind == "commit"
        assert decoded.lsn == lsn
        assert decoded.epoch == epoch
        out = decoded.deltas
        assert set(out) == {name for name, d in deltas.items()}
        for name, original in deltas.items():
            assert same_rows(out[name].plus, original.plus)
            assert same_rows(out[name].minus, original.minus)

    def test_special_floats_round_trip(self):
        deltas = {
            "f": DeltaSet(
                [(-0.0,), (float("inf"),), (float("-inf"),), (0.0, 1.5)], []
            )
        }
        out = decode_delta_map(encode_delta_map(deltas))
        assert same_rows(out["f"].plus, deltas["f"].plus)

    def test_empty_delta_set_round_trips(self):
        out = decode_delta_map(encode_delta_map({"r": DeltaSet()}))
        assert out["r"].empty

    def test_oid_round_trips_with_identity(self):
        deltas = {"quantity": DeltaSet([(OID(7, "item"), 140)], [])}
        out = decode_delta_map(encode_delta_map(deltas))
        ((oid, value),) = out["quantity"].plus
        assert isinstance(oid, OID)
        assert oid == OID(7, "item") and value == 140

    @given(st.data())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_multiple_frames_scan_in_order(self, data):
        records = [
            WalRecord("commit", lsn, {"epoch": lsn, "deltas": {}})
            for lsn in range(data.draw(st.integers(1, 5)))
        ]
        blob = b"".join(encode_frame(r.payload()) for r in records)
        decoded = [
            WalRecord.from_payload(payload) for _, payload in iter_frames(blob)
        ]
        assert [r.lsn for r in decoded] == [r.lsn for r in records]


class TestCorruptionRejection:
    @given(
        deltas=delta_maps,
        data=st.data(),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_any_single_byte_flip_is_rejected(self, deltas, data):
        record = WalRecord(
            "commit", 3, {"epoch": 5, "deltas": encode_delta_map(deltas)}
        )
        frame = bytearray(encode_frame(record.payload()))
        position = data.draw(st.integers(0, len(frame) - 1))
        flip = data.draw(st.integers(1, 255))
        frame[position] ^= flip
        try:
            decoded = list(iter_frames(bytes(frame)))
        except WalCorruptionError:
            return  # rejected: the expected outcome
        # a flip inside the LENGTH field can make the (intact) payload
        # appear shorter; the CRC over the truncated payload then fails,
        # so reaching here with a *different* but valid decode is the
        # only unacceptable outcome
        assert not decoded or decoded[0][1] == record.payload(), (
            f"byte {position} flip by {flip:#x} silently decoded to "
            f"{decoded[0][1]!r}"
        )

    def test_truncated_tail_is_reported_as_torn(self):
        record = WalRecord("commit", 0, {"epoch": 1, "deltas": {}})
        frame = encode_frame(record.payload())
        for cut in (1, HEADER_SIZE - 1, HEADER_SIZE + 1, len(frame) - 1):
            with pytest.raises(WalCorruptionError) as info:
                list(iter_frames(frame[:cut]))
            assert info.value.torn, f"cut at {cut} not seen as torn"
            assert info.value.offset == 0

    def test_bad_magic_is_corruption_not_torn(self):
        record = WalRecord("commit", 0, {"epoch": 1, "deltas": {}})
        frame = bytearray(encode_frame(record.payload()))
        frame[0] ^= 0xFF
        with pytest.raises(WalCorruptionError) as info:
            list(iter_frames(bytes(frame)))
        assert not info.value.torn

    def test_mid_log_corruption_is_not_torn(self):
        frames = [
            encode_frame(WalRecord("commit", lsn, {"epoch": lsn, "deltas": {}}).payload())
            for lsn in range(3)
        ]
        blob = bytearray(b"".join(frames))
        # flip a payload byte of the SECOND record
        blob[len(frames[0]) + HEADER_SIZE + 2] ^= 0x01
        with pytest.raises(WalCorruptionError) as info:
            list(iter_frames(bytes(blob)))
        assert info.value.offset == len(frames[0])
        assert not info.value.torn
