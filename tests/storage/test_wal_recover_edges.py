"""recover() edge cases the fault ring never generates (ISSUE 7).

The fault-injection oracle always crashes a log that saw at least some
traffic; these pin the degenerate directory shapes a deployment can
still produce — a WAL directory that exists but was never written, a
crash at the instant segment 1 was created (zero bytes), and a
rotation that created the next segment but died before its first
record.
"""

import os

from repro.amos.database import AmosDatabase
from repro.storage.wal import WriteAheadLog, recover


def make_amos():
    amos = AmosDatabase(explain=True)
    amos.create_type("item")
    amos.create_stored_function("quantity", ("item",), ("integer",))
    return amos


class TestRecoverEdges:
    def test_empty_wal_directory(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        amos = recover(str(wal_dir), amos=make_amos())
        assert amos.wal is not None
        report = amos.wal.last_recovery
        assert report.records == 0
        assert report.commits == 0
        assert amos.wal.next_lsn == 0
        # the recovered (empty) log accepts appends normally
        amos.storage.auto_publish = True
        obj = amos.create_object("item")
        with amos.transaction():
            amos.set_value("quantity", (obj,), 7)
        assert amos.wal.next_lsn >= 1
        amos.detach_wal()

    def test_directory_with_only_a_zero_byte_segment(self, tmp_path):
        # crash after creat() of wal-00000001.log, before any frame
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(b"")
        amos = recover(str(tmp_path), amos=make_amos())
        report = amos.wal.last_recovery
        assert report.records == 0
        assert report.truncated_bytes == 0
        assert amos.wal.next_lsn == 0
        record = amos.wal.append_commit(1, {})
        assert record.lsn == 0
        amos.detach_wal()

    def test_single_record_segment_then_empty_rotated_segment(self, tmp_path):
        # build one real record, then simulate a rotation that died
        # right after creating the next (empty) segment
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append_commit(1, {})
            paths = wal.segment_paths()
            assert len(paths) == 1
        empty_next = os.path.join(
            str(tmp_path), os.path.basename(paths[0]).replace("01", "02")
        )
        with open(empty_next, "wb"):
            pass
        amos = recover(str(tmp_path), amos=make_amos())
        report = amos.wal.last_recovery
        assert report.records == 1
        assert report.commits == 1
        assert amos.wal.next_lsn == 1
        # appends continue in the empty rotated segment, gaplessly
        record = amos.wal.append_commit(2, {})
        assert record.lsn == 1
        replay = [r.lsn for r in amos.wal.records()]
        assert replay == [0, 1]
        amos.detach_wal()
