"""Unit tests for the WAL follow API (WalTailer, wait_for_lsn).

The tailer is the primary half of replication: it reads committed
frames straight off the segment files — concurrently with the appender
— and blocks for new ones.  These tests pin the mechanics: ordering,
segment hand-off during rotation, torn-tail tolerance (a partially
written frame stops the poll in front of it and is read once whole),
resume from an arbitrary start LSN, and clean shutdown semantics.
"""

import os
import threading
import time

import pytest

from repro.algebra.delta import DeltaSet
from repro.errors import WalError
from repro.storage.wal import (
    WalRecord,
    WalTailer,
    WriteAheadLog,
    encode_frame,
)


def append_n(wal, n, start_epoch=1):
    return [wal.append_commit(start_epoch + i, {}) for i in range(n)]


class TestPoll:
    def test_poll_returns_existing_records_in_order(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            append_n(wal, 5)
            tailer = WalTailer(wal)
            records = tailer.poll()
            assert [r.lsn for r in records] == [0, 1, 2, 3, 4]
            assert tailer.last_lsn == 4
            assert tailer.poll() == []

    def test_poll_crosses_segment_rotation(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_bytes=128) as wal:
            tailer = WalTailer(wal)
            append_n(wal, 8)
            assert wal.rotations > 0
            records = []
            while True:
                batch = tailer.poll()
                if not batch:
                    break
                records.extend(batch)
            assert [r.lsn for r in records] == list(range(8))

    def test_poll_respects_max_records(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            append_n(wal, 6)
            tailer = WalTailer(wal)
            assert [r.lsn for r in tailer.poll(max_records=4)] == [0, 1, 2, 3]
            assert [r.lsn for r in tailer.poll(max_records=4)] == [4, 5]

    def test_start_lsn_skips_already_applied_records(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            append_n(wal, 6)
            tailer = WalTailer(wal, start_lsn=4)
            assert [r.lsn for r in tailer.poll()] == [4, 5]

    def test_start_lsn_mid_rotated_history(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_bytes=128) as wal:
            append_n(wal, 9)
            assert len(wal.segment_paths()) > 2
            tailer = WalTailer(wal, start_lsn=5)
            records = []
            while True:
                batch = tailer.poll()
                if not batch:
                    break
                records.extend(batch)
            assert [r.lsn for r in records] == [5, 6, 7, 8]

    def test_torn_tail_frame_is_not_served_until_whole(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            append_n(wal, 2)
            tailer = WalTailer(wal)
            assert len(tailer.poll()) == 2
            # simulate the appender mid-write: half a frame at the tail
            frame = encode_frame(WalRecord("commit", 2, {"epoch": 3}).payload())
            path = wal.segment_paths()[-1]
            with open(path, "ab") as handle:
                handle.write(frame[: len(frame) // 2])
            assert tailer.poll() == []  # stops IN FRONT of the torn frame
            with open(path, "ab") as handle:
                handle.write(frame[len(frame) // 2:])
            records = tailer.poll()
            assert [r.lsn for r in records] == [2]


class TestBlocking:
    def test_next_batch_blocks_until_append(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            tailer = WalTailer(wal)
            got = []

            def consume():
                got.extend(tailer.next_batch(timeout=5.0))

            thread = threading.Thread(target=consume)
            thread.start()
            time.sleep(0.05)
            wal.append_commit(1, {})
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert [r.lsn for r in got] == [0]

    def test_next_batch_times_out_empty(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            tailer = WalTailer(wal)
            start = time.monotonic()
            assert tailer.next_batch(timeout=0.05) == []
            assert time.monotonic() - start < 2.0

    def test_stop_unblocks_next_batch(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            tailer = WalTailer(wal)
            done = threading.Event()

            def consume():
                tailer.next_batch(timeout=30.0)
                done.set()

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            time.sleep(0.05)
            tailer.stop()
            assert done.wait(5.0)

    def test_close_unblocks_and_ends_iteration(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        append_n(wal, 3)
        tailer = WalTailer(wal)
        seen = []
        done = threading.Event()

        def consume():
            for record in tailer:
                seen.append(record.lsn)
            done.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        time.sleep(0.1)
        wal.close()
        assert done.wait(5.0)
        assert seen == [0, 1, 2]

    def test_wait_for_lsn(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            append_n(wal, 2)
            assert wal.wait_for_lsn(1, timeout=0.1)
            assert not wal.wait_for_lsn(2, timeout=0.05)

            def late_append():
                time.sleep(0.05)
                wal.append_commit(3, {})

            threading.Thread(target=late_append, daemon=True).start()
            assert wal.wait_for_lsn(2, timeout=5.0)


class TestAppendRecord:
    def test_append_record_replays_verbatim(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as source:
            source.append_catalog("create", "orders", 2, ("item", "amount"))
            source.append_commit(1, {"orders": DeltaSet([(1, 2)], [])})
            originals = list(source.records())
        copy_dir = str(tmp_path / "copy")
        with WriteAheadLog(copy_dir) as copy:
            for record in originals:
                copy.append_record(record)
            assert [r.payload() for r in copy.records()] == [
                r.payload() for r in originals
            ]
            assert copy.next_lsn == 2

    def test_append_record_refuses_gaps(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append_record(WalRecord("commit", 0, {"epoch": 1}))
            with pytest.raises(WalError, match="gapless"):
                wal.append_record(WalRecord("commit", 2, {"epoch": 2}))
            with pytest.raises(WalError, match="gapless"):
                wal.append_record(WalRecord("commit", 0, {"epoch": 1}))
            wal.append_record(WalRecord("commit", 1, {"epoch": 2}))
            assert wal.next_lsn == 2
