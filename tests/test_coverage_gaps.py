"""Targeted tests for code paths the main suites touch lightly."""

import pytest

from repro.algebra import operators as ops
from repro.algebra.delta import DeltaSet
from repro.algebra.oldstate import OldStateView
from repro.objectlog.clause import HornClause
from repro.objectlog.evaluate import Evaluator
from repro.objectlog.literals import PredLiteral
from repro.objectlog.program import Program
from repro.objectlog.terms import Variable
from repro.algebra.oldstate import NewStateView
from repro.storage.database import Database

X, Y = Variable("X"), Variable("Y")


class TestOperatorsComplement:
    def test_complement_relative_to_domain(self):
        rows = {(1,), (2,)}
        domain = {(1,), (2,), (3,), (4,)}
        assert ops.complement(rows, domain) == {(3,), (4,)}

    def test_equijoin_empty_pairs_is_product(self):
        left = {(1,)}
        right = {(2,), (3,)}
        assert ops.equijoin(left, right, []) == {(1, 2), (1, 3)}

    def test_project_deduplicates(self):
        assert ops.project({(1, "a"), (1, "b")}, (0,)) == {(1,)}


class TestClauseHelpers:
    def test_rename_apart_freshens_every_variable(self):
        clause = HornClause(
            PredLiteral("p", (X, Y)), [PredLiteral("q", (X, Y))]
        )
        renamed = clause.rename_apart()
        assert renamed.variables().isdisjoint(clause.variables())
        # structure preserved: head vars appear in body identically
        assert renamed.head.args == renamed.body[0].args

    def test_replace_body_literal_bounds_checked(self):
        from repro.errors import ObjectLogError

        clause = HornClause(PredLiteral("p", (X,)), [PredLiteral("q", (X, X))])
        with pytest.raises(ObjectLogError):
            clause.replace_body_literal(5, PredLiteral("r", (X,)))

    def test_head_must_be_plain(self):
        from repro.errors import ObjectLogError

        with pytest.raises(ObjectLogError):
            HornClause(PredLiteral("p", (X,), negated=True), [])
        with pytest.raises(ObjectLogError):
            HornClause(PredLiteral("p", (X,), delta="+"), [])


class TestEvaluatorWithoutMemo:
    def test_memo_disabled_sees_fresh_data(self):
        db = Database()
        db.create_relation("q", 2).bulk_insert([(1, 1)])
        program = Program()
        program.declare_base("q", 2)
        program.declare_derived("p", 1)
        program.add_clause(
            HornClause(PredLiteral("p", (X,)), [PredLiteral("q", (X, X))])
        )
        evaluator = Evaluator(program, NewStateView(db), memoize=False)
        assert evaluator.extension("p") == {(1,)}
        db.relation("q").insert((2, 2))
        assert evaluator.extension("p") == {(1,), (2,)}


class TestOldStateLookupBranches:
    def test_plus_only_delta_lookup(self):
        """The branch where nothing was deleted under this key but an
        insertion must be filtered out of the old view."""
        db = Database()
        relation = db.create_relation("r", 2)
        relation.bulk_insert([(1, "old")])
        relation.insert((1, "new"))
        view = OldStateView(db, {"r": DeltaSet({(1, "new")}, frozenset())})
        assert view.lookup("r", (0,), (1,)) == {(1, "old")}

    def test_untouched_key_fast_path(self):
        db = Database()
        relation = db.create_relation("r", 2)
        relation.bulk_insert([(1, "a"), (2, "b")])
        relation.insert((3, "c"))
        view = OldStateView(db, {"r": DeltaSet({(3, "c")}, frozenset())})
        assert view.lookup("r", (0,), (2,)) == {(2, "b")}
        assert view.lookup("r", (0,), (3,)) == frozenset()


class TestNetworkDotWithAggregates:
    def test_aggregate_node_rendered(self):
        from repro.rules.network import PropagationNetwork

        program = Program()
        program.declare_base("sales", 2)
        program.declare_aggregate("total", "sales", 1, "sum")
        network = PropagationNetwork(program)
        network.add_condition("total")
        dot = network.to_dot()
        assert '"sales" -> "total"' in dot

    def test_aggregate_node_level(self):
        from repro.rules.network import PropagationNetwork

        program = Program()
        program.declare_base("sales", 2)
        program.declare_aggregate("total", "sales", 1, "sum")
        network = PropagationNetwork(program)
        node = network.add_condition("total")
        assert node.kind == "aggregate"
        assert node.level == 1


class TestReplNetworkCommand:
    def test_network_rendered_with_active_rule(self):
        from tests.conftest import make_scripted_repl

        repl, out = make_scripted_repl([
            "create type item;",
            "create function quantity(item) -> integer;",
            "create rule low() as when for each item i "
            "where quantity(i) < 10 do print_(i);",
            "activate low();",
            ".network",
        ])
        output = out.getvalue()
        assert "digraph propagation_network" in output
        assert "Δcnd_low/Δ+quantity" in output


class TestReplSaveLoadCommands:
    def make_repl(self):
        from tests.conftest import make_scripted_repl

        return make_scripted_repl([
            "create type item;",
            "create function quantity(item) -> integer;",
            "create item instances :i;",
            "set quantity(:i) = 42;",
        ])

    def test_save_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "data.json")
        repl, out = self.make_repl()
        repl.handle_line(f".save {path}\n")
        assert f"saved data to {path}" in out.getvalue()

        fresh, fresh_out = self.make_repl()
        fresh.handle_line(".load " + path + "\n")
        assert "rows from " + path in fresh_out.getvalue()
        fresh.handle_line("select quantity(i) for each item i;\n")
        assert "(42,)" in fresh_out.getvalue()

    def test_usage_and_error_reporting(self, tmp_path):
        repl, out = self.make_repl()
        repl.handle_line(".save\n")
        assert "usage: .save <path>" in out.getvalue()
        repl.handle_line(".load\n")
        assert "usage: .load <path>" in out.getvalue()
        repl.handle_line(f".load {tmp_path}/missing.json\n")
        assert "error:" in out.getvalue()
        repl.handle_line(".help\n")
        help_text = out.getvalue()
        assert ".save <path>" in help_text and ".load <path>" in help_text


class TestTransactionStatisticsAndRepr:
    def test_reprs_are_informative(self):
        db = Database()
        db.create_relation("r", 1)
        assert "relations=1" in repr(db)
        from repro.amos.database import AmosDatabase

        amos = AmosDatabase()
        assert "mode='incremental'" in repr(amos)
        assert "RuleManager" in repr(amos.rules)

    def test_rollback_counted(self):
        db = Database()
        db.create_relation("r", 1)
        db.begin()
        db.insert("r", (1,))
        db.rollback()
        assert db.statistics["rollbacks"] == 1
