"""The exception hierarchy: every library error is a ReproError."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    DeltaError,
    DuplicateRelationError,
    LexError,
    ReproError,
    RuleError,
    StorageError,
    UnknownFunctionError,
    UnknownPredicateError,
    UnknownRelationError,
    UnknownRuleError,
    UnknownTypeError,
)


class TestHierarchy:
    def test_every_exported_error_derives_from_repro_error(self):
        for name, obj in vars(errors_module).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise DeltaError("boom")
        with pytest.raises(ReproError):
            raise RuleError("boom")

    def test_subsystem_bases(self):
        assert issubclass(DuplicateRelationError, StorageError)
        assert issubclass(UnknownRelationError, StorageError)


class TestNamedErrors:
    def test_unknown_errors_carry_the_name(self):
        for error_class in (
            UnknownRelationError,
            UnknownPredicateError,
            UnknownTypeError,
            UnknownFunctionError,
            UnknownRuleError,
        ):
            error = error_class("widget")
            assert error.name == "widget"
            assert "widget" in str(error)

    def test_lex_error_carries_position(self):
        error = LexError("bad char", position=17, line=3)
        assert error.position == 17
        assert error.line == 3
        assert "line 3" in str(error)
