"""The public API surface: everything README advertises must import."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_classes(self):
        from repro import (
            AmosDatabase,
            AmosqlEngine,
            Database,
            DeltaSet,
            Rule,
            RuleManager,
        )

        assert AmosDatabase and AmosqlEngine and Database
        assert DeltaSet and Rule and RuleManager


SUBPACKAGES = [
    "repro.storage",
    "repro.algebra",
    "repro.objectlog",
    "repro.amos",
    "repro.amosql",
    "repro.rules",
    "repro.bench",
    "repro.obs",
    "repro.server",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_main_module_importable(self):
        importlib.import_module("repro.__main__")

    def test_every_public_callable_has_a_docstring(self):
        import inspect

        missing = []
        for module_name in SUBPACKAGES + ["repro"]:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module_name}.{name}")
        assert not missing, missing
